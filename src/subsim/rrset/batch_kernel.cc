#include "subsim/rrset/batch_kernel.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "subsim/rrset/epoch_marks.h"
#include "subsim/rrset/lt_generator.h"
#include "subsim/rrset/subsim_ic_generator.h"
#include "subsim/rrset/vanilla_ic_generator.h"
#include "subsim/util/bit_vector.h"
#include "subsim/util/check.h"

namespace subsim {

namespace {

/// Shared lane state and chunk plumbing for the interleaved batched
/// kernels.
///
/// The kernel keeps up to `kMaxLanes` RR sets in flight at once, each in
/// a lane slot with its own substream RNG, frontier scratch, and visited
/// epoch over the shared stamp array (`EpochMarks`; see `MarkLane` for how
/// inter-lane stamp collisions stay exact). Live slots advance round-robin
/// — one pipeline step per visit — so a cache line one lane prefetched
/// streams in while dozens of other lanes execute. On graphs larger than cache this memory-level
/// parallelism, not the instruction count, is where the batched kernel's
/// speedup comes from: the scalar path serializes cache misses along each
/// set's BFS chain. Because WC-style set sizes are heavy-tailed, a slot
/// is reseeded with the chunk's next set index the moment its set
/// finishes — without refill the few giant sets would drain the lane pool
/// and run alone, serialized again.
///
/// Every step is shaped so a visit never demand-loads a line it
/// prefetched in the same visit:
///  * seed — materialize the substream, take the root draw, prefetch the
///    root's visited stamp and offset entry;
///  * root-commit (next visit) — mark and append the root against those
///    now-resident lines, prefetch its adjacency row;
///  * run steps (kernel-specific) — commit the previous visit's
///    discoveries against stamps prefetched a full round earlier, then
///    expand one frontier node whose row has had at least a round in
///    flight, recording new candidates and prefetching their stamps and
///    offset entries.
///
/// Interleaving cannot perturb the streams: a lane only ever draws from
/// its own substream, so the per-set draw order is exactly the scalar
/// generator's regardless of how lane visits are scheduled, and the
/// epilogue flushes sets in index order no matter when they finished.
class BatchKernelBase : public BatchRrKernel {
 public:
  explicit BatchKernelBase(const Graph& graph) : graph_(graph) {
    SUBSIM_CHECK(graph.num_nodes() > 0, "cannot sample from empty graph");
    marks_.Resize(graph.num_nodes());
    sentinel_.Resize(graph.num_nodes());
  }

  void SetSentinels(std::span<const NodeId> sentinels) final {
    sentinel_.ResetTouched();
    has_sentinels_ = !sentinels.empty();
    for (NodeId v : sentinels) {
      sentinel_.Set(v);
    }
  }

  const RrGenStats& stats() const final { return stats_; }
  void ResetStats() final { stats_ = RrGenStats{}; }

 protected:
  /// Live lanes per kernel: sized to the scheduler's 64-bit live mask.
  /// A full round of visits (~64 × tens of ns) comfortably out-waits a
  /// DRAM miss, which is all the prefetch pipeline needs.
  static constexpr std::size_t kMaxLanes = 64;

  enum LaneState : std::uint8_t { kRootCommit = 0, kRun = 1 };

  /// Resets the per-chunk context (set table, mark generation, refill
  /// cursor).
  void BeginChunk(std::uint64_t base_seed, std::uint64_t first_index,
                  std::size_t count) {
    ++stats_.batch_chunks;
    base_seed_ = base_seed;
    first_index_ = first_index;
    chunk_count_ = count;
    next_set_ = 0;
    arena_.clear();
    set_offset_.resize(count);
    set_size_.resize(count);
    set_hit_.assign(count, 0);
    first_epoch_ = marks_.BeginSets(static_cast<std::uint32_t>(count));
  }

  /// Assigns the next set index to `slot`: substream, root draw, and the
  /// prefetches the root-commit visit needs. The root draw is the first
  /// draw of the set's own substream, so taking it here is invisible to
  /// the per-set stream.
  void SeedSlot(std::size_t slot) {
    const std::size_t set = next_set_++;
    lane_set_[slot] = static_cast<std::uint32_t>(set);
    // Rng has no default constructor; the first seeding of each slot (in
    // slot order) grows the vector, every later reseed assigns in place.
    if (slot < lane_rngs_.size()) {
      lane_rngs_[slot] = Rng::Substream(base_seed_, first_index_ + set);
    } else {
      lane_rngs_.push_back(Rng::Substream(base_seed_, first_index_ + set));
    }
    const NodeId root = static_cast<NodeId>(
        lane_rngs_[slot].UniformInt(graph_.num_nodes()));
    lane_root_[slot] = root;
    lane_head_[slot] = 0;
    lane_epoch_[slot] = first_epoch_ + static_cast<std::uint32_t>(set);
    lane_state_[slot] = kRootCommit;
    slot_nodes_[slot].clear();
    PrefetchSeedMeta(root);
    marks_.Prefetch(root);
  }

  /// Prefetches the per-node descriptor line the root-commit visit will
  /// read when it prefetches the root's row. Virtual because each kernel
  /// owns its own packed descriptor array (Graph's `InRowMeta`, the SUBSIM
  /// core's plan, the LT picker's pick record); once per set, so the
  /// dispatch cost is noise.
  virtual void PrefetchSeedMeta(NodeId root) { graph_.PrefetchInMeta(root); }

  /// Exact visited test-and-set for `slot`'s current set. The shared stamp
  /// array is a one-entry cache, not a truth table: our own epoch is a
  /// definite yes, a stamp below the chunk's first epoch is a definite no
  /// (dead era), and a foreign live stamp — another in-flight set touched
  /// `v`, or claimed it after this set did — is resolved against the
  /// lane's own node list, which is exact. The scan is the cold path twice
  /// over: it takes two sets colliding on one node to reach it, and it is
  /// bounded by the RR-set size, which the paper's premise keeps tiny. In
  /// exchange the hot path keeps one 4-byte stamp per node, small enough
  /// to stay cache-resident next to the CSR.
  bool MarkLane(std::size_t slot, NodeId v) {
    const std::uint32_t epoch = lane_epoch_[slot];
    const std::uint32_t stamp = marks_.Stamp(v);
    if (stamp == epoch) {
      return false;
    }
    bool member = false;
    if (stamp >= first_epoch_) {
      const std::vector<NodeId>& nodes = slot_nodes_[slot];
      member = std::find(nodes.begin(), nodes.end(), v) != nodes.end();
    }
    marks_.Overwrite(v, epoch);
    return !member;
  }

  /// Marks and appends the root against the lines the seed visit
  /// prefetched. Returns true when the set is already complete (sentinel
  /// root).
  bool CommitRoot(std::size_t slot) {
    lane_state_[slot] = kRun;
    const NodeId root = lane_root_[slot];
    MarkLane(slot, root);
    slot_nodes_[slot].push_back(root);
    if (has_sentinels_ && sentinel_.Get(root)) {
      MarkLaneHit(slot);
      return true;
    }
    return false;
  }

  /// Records the finished slot's set into the chunk arena.
  void FinishSlot(std::size_t slot) {
    const std::vector<NodeId>& nodes = slot_nodes_[slot];
    const std::uint32_t set = lane_set_[slot];
    set_offset_[set] = arena_.size();
    set_size_[set] = static_cast<std::uint32_t>(nodes.size());
    arena_.insert(arena_.end(), nodes.begin(), nodes.end());
  }

  /// Flushes the chunk's sets to the sink in set-index order.
  void FlushChunk(const BatchChunkSink& sink) {
    for (std::size_t i = 0; i < chunk_count_; ++i) {
      const NodeId* begin = arena_.data() + set_offset_[i];
      sink.nodes->insert(sink.nodes->end(), begin, begin + set_size_[i]);
      sink.sizes->push_back(set_size_[i]);
      sink.hits->push_back(set_hit_[i]);
      ++stats_.sets_generated;
      stats_.nodes_added += set_size_[i];
      if (set_hit_[i] != 0) {
        ++stats_.sentinel_hits;
      }
    }
  }

  void MarkLaneHit(std::size_t slot) { set_hit_[lane_set_[slot]] = 1; }

  const Graph& graph_;
  RrGenStats stats_;
  EpochMarks marks_;
  BitVector sentinel_;
  bool has_sentinels_ = false;

  // SoA lane state, reused across chunks.
  std::vector<Rng> lane_rngs_;
  std::uint32_t lane_set_[kMaxLanes] = {};
  NodeId lane_root_[kMaxLanes] = {};
  std::uint32_t lane_head_[kMaxLanes] = {};  // next frontier index
  std::uint32_t lane_epoch_[kMaxLanes] = {};
  std::uint8_t lane_state_[kMaxLanes] = {};
  std::vector<NodeId> slot_nodes_[kMaxLanes];  // frontier + output, FIFO

  // Per-chunk set table: where each set landed in the arena.
  std::vector<NodeId> arena_;
  std::vector<std::size_t> set_offset_;
  std::vector<std::uint32_t> set_size_;
  std::vector<std::uint8_t> set_hit_;

  std::uint64_t base_seed_ = 0;
  std::uint64_t first_index_ = 0;
  std::size_t chunk_count_ = 0;
  std::size_t next_set_ = 0;
  std::uint32_t first_epoch_ = 0;
};

/// CRTP scheduler: drives `Derived::Step` over the live-slot bitmask with
/// no virtual dispatch on the per-visit path. `Derived` provides
///   bool Step(std::size_t slot);            // one pipeline step
///   void PrefetchNodeData(std::size_t, NodeId);  // row (+ kernel state)
/// and may keep extra per-slot state it resets in `OnChunkStart`.
template <class Derived>
class BatchKernelCrtp : public BatchKernelBase {
 public:
  using BatchKernelBase::BatchKernelBase;

  void GenerateChunk(std::uint64_t base_seed, std::uint64_t first_index,
                     std::size_t count, const BatchChunkSink& sink) final {
    SUBSIM_CHECK(sink.nodes != nullptr && sink.sizes != nullptr &&
                     sink.hits != nullptr,
                 "BatchChunkSink arrays must be set");
    if (count == 0) {
      return;
    }
    Derived* self = static_cast<Derived*>(this);
    BeginChunk(base_seed, first_index, count);
    self->OnChunkStart();

    const std::size_t lanes = count < kMaxLanes ? count : kMaxLanes;
    std::uint64_t live =
        lanes == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << lanes) - 1;
    for (std::size_t slot = 0; slot < lanes; ++slot) {
      SeedSlot(slot);
    }

    // Round-robin over the live slots: one pipeline step per visit. A
    // finished slot reseeds in place while sets remain (its root-commit
    // runs next round, giving the seed prefetches a round to land), and
    // drops out of the mask once the chunk runs dry. Visit order never
    // matters for the output bytes — only each lane's own FIFO order
    // does.
    while (live != 0) {
      std::uint64_t round = live;
      while (round != 0) {
        const unsigned slot = static_cast<unsigned>(std::countr_zero(round));
        round &= round - 1;
        const bool done = lane_state_[slot] == kRootCommit
                              ? CommitRootAndPrefetch(self, slot)
                              : self->Step(slot);
        if (!done) {
          continue;
        }
        FinishSlot(slot);
        if (next_set_ < chunk_count_) {
          SeedSlot(slot);
        } else {
          live &= ~(std::uint64_t{1} << slot);
        }
      }
    }
    FlushChunk(sink);
  }

 private:
  bool CommitRootAndPrefetch(Derived* self, std::size_t slot) {
    if (CommitRoot(slot)) {
      return true;
    }
    self->PrefetchNodeData(slot, lane_root_[slot]);
    return false;
  }
};

/// Counts the in-(0,1) probabilities — the ones whose Bernoulli consumes a
/// draw — so a bulk draw can cover an edge list in one inline RNG pass.
std::size_t CountConditionalDraws(std::span<const double> probs) {
  std::size_t c = 0;
  for (double p : probs) {
    c += (p > 0.0 && p < 1.0) ? 1 : 0;
  }
  return c;
}

/// Vanilla IC, batched. Two edge-expansion paths:
///  * no sentinels — the scalar loop never stops mid-list and activation
///    outcomes never change the draw stream, so a run step first commits
///    the previous visit's coin-pass targets (stamps prefetched a round
///    ago), then expands one frontier node with bulk-drawn coins
///    (`NextU64Batch`), deferring the new targets to the next visit. A
///    node appended by this visit's commit is not expanded until the next
///    visit, so its row prefetch always gets a full round in flight;
///  * sentinels installed — a hit aborts the list mid-edge and the
///    remaining edges draw nothing, so deferring anything would run the
///    stream ahead; use the shared scalar primitive inline.
class VanillaBatchKernel final : public BatchKernelCrtp<VanillaBatchKernel> {
 public:
  using BatchKernelCrtp::BatchKernelCrtp;
  const char* name() const override { return "vanilla-ic-batch"; }

  void OnChunkStart() {
    for (auto& pending : pending_) {
      pending.clear();
    }
  }

  void PrefetchNodeData(std::size_t slot, NodeId v) {
    (void)slot;
    stats_.prefetch_lines += graph_.PrefetchInRow(v);
  }

  bool Step(std::size_t slot) {
    return has_sentinels_ ? StepSentinel(slot) : StepPipelined(slot);
  }

 private:
  bool StepPipelined(std::size_t slot) {
    std::vector<NodeId>& nodes = slot_nodes_[slot];
    const std::uint32_t safe = static_cast<std::uint32_t>(nodes.size());
    std::vector<NodeId>& pending = pending_[slot];
    if (!pending.empty()) {
      for (NodeId w : pending) {
        if (MarkLane(slot, w)) {
          nodes.push_back(w);
          stats_.prefetch_lines += graph_.PrefetchInRow(w);
        }
      }
      pending.clear();
    }
    if (lane_head_[slot] == nodes.size()) {
      return true;
    }
    if (lane_head_[slot] >= safe) {
      return false;  // appended this visit; give its row a round in flight
    }
    const NodeId u = nodes[lane_head_[slot]++];
    const InRowMeta& meta = graph_.InMeta(u);
    stats_.edges_examined += meta.degree;
    const auto sources = graph_.InSourcesAt(meta.begin, meta.degree);
    if (meta.uniform()) {
      // Uniform row (WC / Uniform IC): the weight rides in the packed
      // descriptor, so the O(m) weights row is never read — same p for
      // every edge, so the draw stream and comparisons are bit-identical
      // to the general path below.
      const double p = meta.uniform_weight;
      if (p >= 1.0) {
        for (const NodeId w : sources) {
          Discover(pending, w);
        }
      } else if (p > 0.0) {
        draw_buf_.resize(meta.degree);
        lane_rngs_[slot].NextU64Batch(draw_buf_.data(), meta.degree);
        for (std::size_t e = 0; e < sources.size(); ++e) {
          if (Rng::ToUnitDouble(draw_buf_[e]) < p) {
            Discover(pending, sources[e]);
          }
        }
      }
    } else {
      const auto weights = graph_.InWeightsAt(meta.begin, meta.degree);
      const std::size_t draws = CountConditionalDraws(weights);
      draw_buf_.resize(draws);
      lane_rngs_[slot].NextU64Batch(draw_buf_.data(), draws);
      std::size_t j = 0;
      for (std::size_t e = 0; e < sources.size(); ++e) {
        const double p = weights[e];
        if (p <= 0.0) {
          continue;
        }
        if (p < 1.0 && !(Rng::ToUnitDouble(draw_buf_[j++]) < p)) {
          continue;
        }
        Discover(pending, sources[e]);
      }
    }
    return pending.empty() && lane_head_[slot] == nodes.size();
  }

  /// Records a coin-pass target for the next visit's commit and prefetches
  /// the two lines that commit will touch (visited stamp, row descriptor).
  void Discover(std::vector<NodeId>& pending, NodeId w) {
    pending.push_back(w);
    marks_.Prefetch(w);
    graph_.PrefetchInMeta(w);
  }

  bool StepSentinel(std::size_t slot) {
    std::vector<NodeId>& nodes = slot_nodes_[slot];
    const NodeId u = nodes[lane_head_[slot]++];
    const auto try_activate = [&](NodeId w) {
      if (!MarkLane(slot, w)) {
        return false;  // already active
      }
      nodes.push_back(w);
      graph_.PrefetchInMeta(w);
      graph_.PrefetchInOffsets(w);
      return sentinel_.Get(w);
    };
    if (ExpandVanillaInEdges(graph_, u, lane_rngs_[slot],
                             &stats_.edges_examined, try_activate)) {
      MarkLaneHit(slot);
      return true;
    }
    if (lane_head_[slot] == nodes.size()) {
      return true;
    }
    PrefetchNodeData(slot, nodes[lane_head_[slot]]);
    return false;
  }

  std::vector<NodeId> pending_[kMaxLanes];
  std::vector<std::uint64_t> draw_buf_;
};

/// SUBSIM IC, batched: the scalar `SubsimExpandCore` plans drive the
/// traversal; only the activation sink and the small-degree naive policy
/// (bulk draws) differ. Without sentinels the draws are independent of
/// activation outcomes, so the sink merely collects candidates and the
/// run step commits them a round later (same pipeline as the vanilla
/// kernel). With sentinels a stop truncates the take-all/bucket emission
/// loops, so the sink must mark inline — that path mirrors the scalar
/// generator. The naive plan's draw count is data-independent even under
/// sentinels — the scalar path keeps flipping coins after a stop
/// (activations become no-ops) — so the bulk policy is unconditionally
/// stream-legal.
class SubsimBatchKernel final : public BatchKernelCrtp<SubsimBatchKernel> {
 public:
  explicit SubsimBatchKernel(const Graph& graph)
      : BatchKernelCrtp(graph),
        core_(graph, GeneralIcStrategy::kAuto,
              SubsimIcGenerator::kDefaultNaiveFallbackDegree) {}

  const char* name() const override { return "subsim-ic-batch"; }

  void OnChunkStart() {
    for (auto& pending : pending_) {
      pending.clear();
    }
  }

  void PrefetchSeedMeta(NodeId root) override { core_.PrefetchPlan(root); }

  void PrefetchNodeData(std::size_t slot, NodeId v) {
    (void)slot;
    stats_.prefetch_lines += core_.PrefetchRow(v);
  }

  bool Step(std::size_t slot) {
    return has_sentinels_ ? StepSentinel(slot) : StepPipelined(slot);
  }

 private:
  /// No-sentinel sink: collect candidates and prefetch what their commit
  /// will touch; never stops, so every emission loop runs to its natural
  /// end exactly like the scalar path with no sentinels installed.
  struct CollectSink {
    SubsimBatchKernel* kernel;
    std::vector<NodeId>* pending;
    void Activate(NodeId w) {
      pending->push_back(w);
      kernel->marks_.Prefetch(w);
      kernel->core_.PrefetchPlan(w);
    }
    bool stopped() const { return false; }
  };

  /// Sentinel sink: the scalar generator's semantics — mark inline, stop
  /// the traversal when a sentinel activates.
  struct InlineSink {
    SubsimBatchKernel* kernel;
    std::vector<NodeId>* nodes;
    std::size_t slot;
    bool stopped_;
    void Activate(NodeId w) {
      if (stopped_ || !kernel->MarkLane(slot, w)) {
        return;
      }
      nodes->push_back(w);
      kernel->core_.PrefetchPlan(w);
      if (kernel->sentinel_.Get(w)) {
        stopped_ = true;
      }
    }
    bool stopped() const { return stopped_; }
  };

  bool StepPipelined(std::size_t slot) {
    std::vector<NodeId>& nodes = slot_nodes_[slot];
    const std::uint32_t safe = static_cast<std::uint32_t>(nodes.size());
    std::vector<NodeId>& pending = pending_[slot];
    if (!pending.empty()) {
      for (NodeId w : pending) {
        if (MarkLane(slot, w)) {
          nodes.push_back(w);
          stats_.prefetch_lines += core_.PrefetchRow(w);
        }
      }
      pending.clear();
    }
    if (lane_head_[slot] == nodes.size()) {
      return true;
    }
    if (lane_head_[slot] >= safe) {
      return false;  // appended this visit; give its row a round in flight
    }
    const NodeId u = nodes[lane_head_[slot]++];
    CollectSink sink{this, &pending};
    BulkNaivePolicy naive{&draw_buf_};
    core_.ExpandNode(u, lane_rngs_[slot], &stats_, sink, naive);
    return pending.empty() && lane_head_[slot] == nodes.size();
  }

  bool StepSentinel(std::size_t slot) {
    std::vector<NodeId>& nodes = slot_nodes_[slot];
    const NodeId u = nodes[lane_head_[slot]++];
    InlineSink sink{this, &nodes, slot, false};
    BulkNaivePolicy naive{&draw_buf_};
    if (core_.ExpandNode(u, lane_rngs_[slot], &stats_, sink, naive)) {
      MarkLaneHit(slot);
      return true;
    }
    if (lane_head_[slot] == nodes.size()) {
      return true;
    }
    PrefetchNodeData(slot, nodes[lane_head_[slot]]);
    return false;
  }

  /// Stream-identical replacement for `ScalarNaivePolicy`: bulk-draws the
  /// coins, then replays the scalar comparisons in order. The uniform hook
  /// never reads the weights row — `p` arrives via the plan descriptor.
  struct BulkNaivePolicy {
    std::vector<std::uint64_t>* buf;
    template <class Emit>
    void operator()(NodeId /*u*/, std::span<const double> probs, Rng& rng,
                    Emit&& emit) const {
      const std::size_t draws = CountConditionalDraws(probs);
      buf->resize(draws);
      rng.NextU64Batch(buf->data(), draws);
      std::size_t j = 0;
      for (std::size_t i = 0; i < probs.size(); ++i) {
        const double p = probs[i];
        if (p <= 0.0) {
          continue;
        }
        if (p >= 1.0 || Rng::ToUnitDouble((*buf)[j++]) < p) {
          emit(static_cast<std::uint32_t>(i));
        }
      }
    }
    template <class Emit>
    void UniformRow(std::uint32_t degree, double p, Rng& rng,
                    Emit&& emit) const {
      if (p <= 0.0) {
        return;
      }
      if (p >= 1.0) {
        for (std::uint32_t i = 0; i < degree; ++i) {
          emit(i);
        }
        return;
      }
      buf->resize(degree);
      rng.NextU64Batch(buf->data(), degree);
      for (std::uint32_t i = 0; i < degree; ++i) {
        if (Rng::ToUnitDouble((*buf)[i]) < p) {
          emit(i);
        }
      }
    }
  };

  SubsimExpandCore core_;
  std::vector<NodeId> pending_[kMaxLanes];
  std::vector<std::uint64_t> draw_buf_;
};

/// LT, batched. The live-edge walk is inherently sequential in its draws
/// (each step's pick decides whether there is a next step), so everything
/// here is memory-level parallelism: dozens of walks advance round-robin
/// through a two-phase pipeline. The pick phase draws the next candidate
/// from resident data and prefetches the candidate's stamp, offset entry,
/// weight sum, and alias pointer; the commit phase (a round later) marks
/// it, appends it, and prefetches its in-row for the following pick.
class LtBatchKernel final : public BatchKernelCrtp<LtBatchKernel> {
 public:
  explicit LtBatchKernel(const Graph& graph)
      : BatchKernelCrtp(graph), picker_(graph) {}

  const char* name() const override { return "lt-batch"; }

  void OnChunkStart() {}

  void PrefetchNodeData(std::size_t slot, NodeId v) {
    (void)slot;
    picker_.PrefetchPick(v);
    stats_.prefetch_lines += graph_.PrefetchInRow(v);
  }

  bool Step(std::size_t slot) {
    std::vector<NodeId>& nodes = slot_nodes_[slot];
    if (lane_pick_[slot] != 0) {
      lane_pick_[slot] = 0;
      const NodeId next = lane_candidate_[slot];
      if (!MarkLane(slot, next)) {
        return true;  // walked into the existing set
      }
      nodes.push_back(next);
      if (has_sentinels_ && sentinel_.Get(next)) {
        MarkLaneHit(slot);
        return true;
      }
      stats_.prefetch_lines += graph_.PrefetchInRow(next);
      return false;
    }

    const NodeId next =
        picker_.PickInNeighbor(nodes.back(), lane_rngs_[slot], &stats_);
    if (next == kInvalidNode) {
      return true;  // dead end
    }
    lane_candidate_[slot] = next;
    marks_.Prefetch(next);
    graph_.PrefetchInMeta(next);
    graph_.PrefetchInOffsets(next);
    picker_.PrefetchPick(next);
    lane_pick_[slot] = 1;
    return false;
  }

 private:
  LtEdgePicker picker_;
  NodeId lane_candidate_[kMaxLanes] = {};
  std::uint8_t lane_pick_[kMaxLanes] = {};
};

}  // namespace

Result<std::unique_ptr<BatchRrKernel>> BatchRrKernel::Create(
    GeneratorKind kind, const Graph& graph) {
  switch (kind) {
    case GeneratorKind::kVanillaIc:
      return std::unique_ptr<BatchRrKernel>(new VanillaBatchKernel(graph));
    case GeneratorKind::kSubsimIc:
      return std::unique_ptr<BatchRrKernel>(new SubsimBatchKernel(graph));
    case GeneratorKind::kLt: {
      Status status = LtEdgePicker::Validate(graph);
      if (!status.ok()) {
        return status;
      }
      return std::unique_ptr<BatchRrKernel>(new LtBatchKernel(graph));
    }
  }
  return Status::InvalidArgument("unknown generator kind");
}

}  // namespace subsim
