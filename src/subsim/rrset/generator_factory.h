#ifndef SUBSIM_RRSET_GENERATOR_FACTORY_H_
#define SUBSIM_RRSET_GENERATOR_FACTORY_H_

#include <memory>
#include <string>

#include "subsim/graph/graph.h"
#include "subsim/rrset/rr_generator.h"
#include "subsim/util/status.h"

namespace subsim {

/// RR-set generation strategies selectable by name. This is the axis the
/// paper's experiments vary: every IM algorithm runs with either the
/// vanilla generator or the SUBSIM generator.
enum class GeneratorKind {
  kVanillaIc,  // Algorithm 2
  kSubsimIc,   // Algorithm 3 (+ general-IC extensions)
  kLt,         // Linear Threshold live-edge walk
};

/// Builds a generator over `graph` (which must outlive the result).
/// kLt validates the per-node weight-sum requirement.
Result<std::unique_ptr<RrGenerator>> MakeRrGenerator(GeneratorKind kind,
                                                     const Graph& graph);

/// Parses "vanilla" | "subsim" | "lt".
Result<GeneratorKind> ParseGeneratorKind(const std::string& name);

const char* GeneratorKindName(GeneratorKind kind);

}  // namespace subsim

#endif  // SUBSIM_RRSET_GENERATOR_FACTORY_H_
