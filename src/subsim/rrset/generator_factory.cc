#include "subsim/rrset/generator_factory.h"

#include "subsim/rrset/lt_generator.h"
#include "subsim/rrset/subsim_ic_generator.h"
#include "subsim/rrset/vanilla_ic_generator.h"

namespace subsim {

void RrGenerator::Fill(Rng& rng, std::size_t count, RrCollection* collection,
                       const ObsContext& obs) {
  MetricsRegistry::HistogramHandle set_size;
  if (obs.metrics != nullptr) {
    set_size = obs.metrics->Histogram("rr.set_size");
  }
  const RrGenStats before = stats();
  std::vector<NodeId> scratch;
  for (std::size_t i = 0; i < count; ++i) {
    const bool hit = Generate(rng, &scratch);
    collection->Add(scratch, hit);
    set_size.Observe(scratch.size());
  }
  FlushRrGenStatsDelta(before, stats(), obs.metrics);
}

void FlushRrGenStatsDelta(const RrGenStats& before, const RrGenStats& after,
                          MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    return;
  }
  metrics->Counter("rr.sets_generated")
      .Add(after.sets_generated - before.sets_generated);
  metrics->Counter("rr.nodes_added").Add(after.nodes_added - before.nodes_added);
  metrics->Counter("rr.edges_examined")
      .Add(after.edges_examined - before.edges_examined);
  metrics->Counter("rr.sentinel_hits")
      .Add(after.sentinel_hits - before.sentinel_hits);
  metrics->Counter("rr.geometric_skips")
      .Add(after.geometric_skips - before.geometric_skips);
  metrics->Counter("rr.rejection_accepts")
      .Add(after.rejection_accepts - before.rejection_accepts);
  metrics->Counter("rr.batch_chunks")
      .Add(after.batch_chunks - before.batch_chunks);
  metrics->Counter("rr.prefetch_lines")
      .Add(after.prefetch_lines - before.prefetch_lines);
}

Result<std::unique_ptr<RrGenerator>> MakeRrGenerator(GeneratorKind kind,
                                                     const Graph& graph) {
  switch (kind) {
    case GeneratorKind::kVanillaIc:
      return std::unique_ptr<RrGenerator>(new VanillaIcGenerator(graph));
    case GeneratorKind::kSubsimIc:
      return std::unique_ptr<RrGenerator>(new SubsimIcGenerator(graph));
    case GeneratorKind::kLt: {
      Result<std::unique_ptr<LtGenerator>> lt = LtGenerator::Create(graph);
      if (!lt.ok()) {
        return lt.status();
      }
      return std::unique_ptr<RrGenerator>(std::move(lt).value().release());
    }
  }
  return Status::InvalidArgument("unknown generator kind");
}

Result<GeneratorKind> ParseGeneratorKind(const std::string& name) {
  if (name == "vanilla") return GeneratorKind::kVanillaIc;
  if (name == "subsim") return GeneratorKind::kSubsimIc;
  if (name == "lt") return GeneratorKind::kLt;
  return Status::InvalidArgument("unknown generator kind: " + name);
}

const char* GeneratorKindName(GeneratorKind kind) {
  switch (kind) {
    case GeneratorKind::kVanillaIc:
      return "vanilla";
    case GeneratorKind::kSubsimIc:
      return "subsim";
    case GeneratorKind::kLt:
      return "lt";
  }
  return "?";
}

}  // namespace subsim
