#include "subsim/rrset/generator_factory.h"

#include "subsim/rrset/lt_generator.h"
#include "subsim/rrset/subsim_ic_generator.h"
#include "subsim/rrset/vanilla_ic_generator.h"

namespace subsim {

void RrGenerator::Fill(Rng& rng, std::size_t count,
                       RrCollection* collection) {
  std::vector<NodeId> scratch;
  for (std::size_t i = 0; i < count; ++i) {
    const bool hit = Generate(rng, &scratch);
    collection->Add(scratch, hit);
  }
}

Result<std::unique_ptr<RrGenerator>> MakeRrGenerator(GeneratorKind kind,
                                                     const Graph& graph) {
  switch (kind) {
    case GeneratorKind::kVanillaIc:
      return std::unique_ptr<RrGenerator>(new VanillaIcGenerator(graph));
    case GeneratorKind::kSubsimIc:
      return std::unique_ptr<RrGenerator>(new SubsimIcGenerator(graph));
    case GeneratorKind::kLt: {
      Result<std::unique_ptr<LtGenerator>> lt = LtGenerator::Create(graph);
      if (!lt.ok()) {
        return lt.status();
      }
      return std::unique_ptr<RrGenerator>(std::move(lt).value().release());
    }
  }
  return Status::InvalidArgument("unknown generator kind");
}

Result<GeneratorKind> ParseGeneratorKind(const std::string& name) {
  if (name == "vanilla") return GeneratorKind::kVanillaIc;
  if (name == "subsim") return GeneratorKind::kSubsimIc;
  if (name == "lt") return GeneratorKind::kLt;
  return Status::InvalidArgument("unknown generator kind: " + name);
}

const char* GeneratorKindName(GeneratorKind kind) {
  switch (kind) {
    case GeneratorKind::kVanillaIc:
      return "vanilla";
    case GeneratorKind::kSubsimIc:
      return "subsim";
    case GeneratorKind::kLt:
      return "lt";
  }
  return "?";
}

}  // namespace subsim
