#ifndef SUBSIM_RRSET_SAMPLE_STORE_H_
#define SUBSIM_RRSET_SAMPLE_STORE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>

#include "subsim/graph/graph.h"
#include "subsim/random/rng.h"
#include "subsim/rrset/generator_factory.h"
#include "subsim/rrset/parallel_fill.h"
#include "subsim/rrset/rr_collection.h"
#include "subsim/util/mutex.h"
#include "subsim/util/status.h"
#include "subsim/util/thread_annotations.h"

namespace subsim {

/// Resumable, shareable RR-set sampling state: two independent streams of
/// plain (never sentinel-truncated) RR sets, each a pure function of
/// (graph, generator kind, its stream base seed) — set `i` of a stream is
/// `Rng::Substream(base_seed, i)`'s output, the same no matter how many
/// `EnsureSets` calls produced it or how many threads filled it. That
/// prefix property is what lets one store serve many queries: a `k = 50,
/// eps = 0.1` query extends the sets an earlier `k = 10, eps = 0.3` query
/// generated instead of resampling, and any query evaluating a prefix sees
/// exactly what a cold run with that many sets would have seen.
///
/// Concurrency: appends happen under an exclusive (writer) lock and commit
/// their new length to an atomic watermark; reads take a shared lock
/// (`Read`) and may only view prefixes at or below the watermark, so any
/// number of queries can evaluate committed prefixes while at most one
/// extends the streams. All methods are thread-safe. The stream bodies
/// (`streams_`) are `SUBSIM_GUARDED_BY(mu_)`; the watermarks live in a
/// separate atomic array precisely so the lock-free `num_sets` fast path
/// needs no capability.
///
/// Every thread count has the cross-call prefix property — fills go through
/// the thread-invariant `FillCollection`, so `num_threads` changes only how
/// fast streams grow, never their contents. Warm cache hits are therefore
/// bit-identical to cold multi-threaded runs.
class SampleStore {
 public:
  static constexpr std::size_t kNumStreams = 2;

  struct Options {
    /// Worker threads per fill: 1 (default) runs inline, 0 = hardware
    /// concurrency, N = N workers. Stream contents are identical for every
    /// value.
    unsigned num_threads = 1;
    /// Optional metrics sinks; the pointed-to registry/tracer must outlive
    /// the store. Fills flush `rr.*` deltas plus `store.fill_rounds` /
    /// `store.sets_generated` counters and the `store.approx_bytes` gauge.
    ObsContext obs;
    /// Generation kernel for fills; stream contents are identical for
    /// every value (see `FillKernel`).
    FillKernel kernel = FillKernel::kAuto;
    /// Arena storage encoding for both streams (see `RrEncoding`). A pure
    /// storage knob: the logical sample stream — and therefore every
    /// selected seed — is identical for every value; only the arena bytes
    /// (and thus `ApproxMemoryBytes`/cache budget spend) change.
    RrEncoding encoding = RrEncoding::kRaw;
  };

  /// Builds a store over `graph` (which must outlive the store; the
  /// serving cache keeps a shared snapshot alive alongside it). Fails when
  /// the generator kind rejects the graph (e.g. LT weight sums).
  static Result<std::unique_ptr<SampleStore>> Create(
      const Graph& graph, GeneratorKind kind,
      std::array<RngStream, kNumStreams> streams, const Options& options);
  static Result<std::unique_ptr<SampleStore>> Create(
      const Graph& graph, GeneratorKind kind,
      std::array<RngStream, kNumStreams> streams) {
    return Create(graph, kind, streams, Options());
  }

  /// How much of a repair was incremental.
  struct RepairStats {
    /// Sets regenerated because they contained a dirty node.
    std::uint64_t sets_repaired = 0;
    /// Sets carried forward untouched.
    std::uint64_t sets_kept = 0;
  };

  /// Builds the store `Create(graph, source.kind, source's streams)` +
  /// `EnsureSets` to `source`'s lengths *would* build — without paying for
  /// the clean sets. `graph` must be a successor snapshot of `source`'s
  /// graph with the same node count, and `dirty_nodes` the in-row
  /// invalidation frontier of the mutation (`EdgeUpdateResult::dirty_nodes`).
  ///
  /// Why this is exact: a reverse traversal reads only the in-adjacency
  /// rows of nodes it visits, i.e. of the RR set's own members, and set `i`
  /// is a pure function of `(graph in-rows it reads, Substream(base, i))`.
  /// A committed set containing no dirty node therefore replays
  /// bit-identically on `graph` and is copied; every other set is
  /// regenerated from its own substream (found via the collection's
  /// node->RR-id inverted index, cost proportional to the affected sets).
  /// The result is byte-identical to the cold rebuild at any thread count.
  ///
  /// `source` is read under its shared lock (concurrent queries keep
  /// serving it); the repaired store continues both streams at the exact
  /// indices `source` had committed. The repaired store always stores
  /// under `source`'s arena encoding (`options.encoding` is ignored):
  /// kept sets are carried through `RrSetView` in storage order, which
  /// round-trips byte-identically only within one encoding. Fails when the
  /// kind rejects `graph` (e.g. an update pushed an LT weight sum past 1)
  /// or the node counts differ. `stats` (optional) receives the repair
  /// split.
  static Result<std::unique_ptr<SampleStore>> CreateRepaired(
      const Graph& graph, const SampleStore& source,
      std::span<const NodeId> dirty_nodes, const Options& options,
      RepairStats* stats = nullptr);

  SampleStore(const SampleStore&) = delete;
  SampleStore& operator=(const SampleStore&) = delete;

  /// Grows stream `stream` to at least `count` sets; no-op when the stream
  /// is already that long. Takes the writer lock only when growth is
  /// needed (double-checked against the committed watermark).
  Status EnsureSets(std::size_t stream, std::uint64_t count)
      SUBSIM_EXCLUDES(mu_);

  /// Committed set count of a stream. Lock-free (acquire load).
  std::uint64_t num_sets(std::size_t stream) const {
    SUBSIM_DCHECK(stream < kNumStreams, "stream out of range");
    return committed_[stream].load(std::memory_order_acquire);
  }

  /// Total sets generated across both streams since construction.
  std::uint64_t total_generated() const {
    return num_sets(0) + num_sets(1);
  }

  GeneratorKind generator_kind() const { return kind_; }
  NodeId num_graph_nodes() const { return num_nodes_; }
  /// Arena encoding both streams store under (fixed at creation).
  RrEncoding encoding() const { return options_.encoding; }

  /// Approximate heap footprint of both collections.
  std::uint64_t ApproxMemoryBytes() const SUBSIM_EXCLUDES(mu_);

  /// Shared-lock handle for reading committed prefixes. Holds the lock for
  /// its lifetime; keep the scope tight.
  ///
  /// This is a guard-handle: the shared capability is acquired in one
  /// object's constructor and consumed by another method (`View`), a shape
  /// Clang's per-function analysis cannot follow — hence the narrow
  /// `SUBSIM_NO_THREAD_SAFETY_ANALYSIS` escapes below. Everything the
  /// handle does is still runtime-correct: construction takes the shared
  /// lock, `View` only dereferences while it is held, destruction releases.
  class ReadGuard {
   public:
    ~ReadGuard() SUBSIM_NO_THREAD_SAFETY_ANALYSIS {  // releases ctor's hold
      store_->mu_.UnlockShared();
    }

    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

    /// View of the first `prefix` sets of `stream`. `prefix` must not
    /// exceed the committed watermark.
    RrCollectionView View(std::size_t stream, std::uint64_t prefix) const
        SUBSIM_NO_THREAD_SAFETY_ANALYSIS {  // shared hold since construction
      SUBSIM_DCHECK(stream < kNumStreams, "stream out of range");
      SUBSIM_DCHECK(prefix <= store_->num_sets(stream),
                    "view prefix beyond committed watermark");
      return RrCollectionView(store_->streams_[stream].collection,
                              static_cast<std::size_t>(prefix));
    }

   private:
    friend class SampleStore;
    explicit ReadGuard(const SampleStore* store)
        SUBSIM_NO_THREAD_SAFETY_ANALYSIS  // guard-handle acquisition
        : store_(store) {
      store_->mu_.LockShared();
    }

    const SampleStore* store_;
  };

  ReadGuard Read() const { return ReadGuard(this); }

 private:
  struct Stream {
    RrCollection collection;
    /// Cursor into the stream's counter-based substream sequence; its
    /// `next_index` always equals `collection.num_sets()`.
    RngStream rng;

    Stream(NodeId num_nodes, RrEncoding encoding, RngStream stream)
        : collection(num_nodes, encoding), rng(stream) {}
  };

  SampleStore(const Graph& graph, GeneratorKind kind,
              std::array<RngStream, kNumStreams> streams,
              const Options& options);

  const Graph* graph_;
  GeneratorKind kind_;
  NodeId num_nodes_;
  Options options_;
  /// Acquired after `RrSketchCache::mu_` (the cache walks stores for
  /// budget accounting while holding its own lock; stores never call back
  /// into the cache).
  mutable SharedMutex mu_;
  std::array<Stream, kNumStreams> streams_ SUBSIM_GUARDED_BY(mu_);
  /// Committed watermarks, readable without the lock: writers publish a
  /// new length with a release store after appending under the writer
  /// lock; `num_sets` pairs it with an acquire load.
  std::array<std::atomic<std::uint64_t>, kNumStreams> committed_{};
};

}  // namespace subsim

#endif  // SUBSIM_RRSET_SAMPLE_STORE_H_
