#ifndef SUBSIM_RRSET_SAMPLE_STORE_H_
#define SUBSIM_RRSET_SAMPLE_STORE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>

#include "subsim/graph/graph.h"
#include "subsim/random/rng.h"
#include "subsim/rrset/generator_factory.h"
#include "subsim/rrset/rr_collection.h"
#include "subsim/util/status.h"

namespace subsim {

/// Resumable, shareable RR-set sampling state: two independent streams of
/// plain (never sentinel-truncated) RR sets, each a pure function of
/// (graph, generator kind, its stream base seed) — set `i` of a stream is
/// `Rng::Substream(base_seed, i)`'s output, the same no matter how many
/// `EnsureSets` calls produced it or how many threads filled it. That
/// prefix property is what lets one store serve many queries: a `k = 50,
/// eps = 0.1` query extends the sets an earlier `k = 10, eps = 0.3` query
/// generated instead of resampling, and any query evaluating a prefix sees
/// exactly what a cold run with that many sets would have seen.
///
/// Concurrency: appends happen under an exclusive (writer) lock and commit
/// their new length to an atomic watermark; reads take a shared lock
/// (`Read`) and may only view prefixes at or below the watermark, so any
/// number of queries can evaluate committed prefixes while at most one
/// extends the streams. All methods are thread-safe.
///
/// Every thread count has the cross-call prefix property — fills go through
/// the thread-invariant `FillCollection`, so `num_threads` changes only how
/// fast streams grow, never their contents. Warm cache hits are therefore
/// bit-identical to cold multi-threaded runs.
class SampleStore {
 public:
  static constexpr std::size_t kNumStreams = 2;

  struct Options {
    /// Worker threads per fill: 1 (default) runs inline, 0 = hardware
    /// concurrency, N = N workers. Stream contents are identical for every
    /// value.
    unsigned num_threads = 1;
    /// Optional metrics sinks; the pointed-to registry/tracer must outlive
    /// the store. Fills flush `rr.*` deltas plus `store.fill_rounds` /
    /// `store.sets_generated` counters and the `store.approx_bytes` gauge.
    ObsContext obs;
  };

  /// Builds a store over `graph` (which must outlive the store; the
  /// serving cache keeps a shared snapshot alive alongside it). Fails when
  /// the generator kind rejects the graph (e.g. LT weight sums).
  static Result<std::unique_ptr<SampleStore>> Create(
      const Graph& graph, GeneratorKind kind,
      std::array<RngStream, kNumStreams> streams, const Options& options);
  static Result<std::unique_ptr<SampleStore>> Create(
      const Graph& graph, GeneratorKind kind,
      std::array<RngStream, kNumStreams> streams) {
    return Create(graph, kind, streams, Options());
  }

  SampleStore(const SampleStore&) = delete;
  SampleStore& operator=(const SampleStore&) = delete;

  /// Grows stream `stream` to at least `count` sets; no-op when the stream
  /// is already that long. Takes the writer lock only when growth is
  /// needed (double-checked against the committed watermark).
  Status EnsureSets(std::size_t stream, std::uint64_t count);

  /// Committed set count of a stream. Lock-free (acquire load).
  std::uint64_t num_sets(std::size_t stream) const {
    SUBSIM_DCHECK(stream < kNumStreams, "stream out of range");
    return streams_[stream].committed.load(std::memory_order_acquire);
  }

  /// Total sets generated across both streams since construction.
  std::uint64_t total_generated() const {
    return num_sets(0) + num_sets(1);
  }

  GeneratorKind generator_kind() const { return kind_; }
  NodeId num_graph_nodes() const { return num_nodes_; }

  /// Approximate heap footprint of both collections.
  std::uint64_t ApproxMemoryBytes() const;

  /// Shared-lock handle for reading committed prefixes. Holds the lock for
  /// its lifetime; keep the scope tight.
  class ReadGuard {
   public:
    /// View of the first `prefix` sets of `stream`. `prefix` must not
    /// exceed the committed watermark.
    RrCollectionView View(std::size_t stream, std::uint64_t prefix) const {
      SUBSIM_DCHECK(stream < kNumStreams, "stream out of range");
      SUBSIM_DCHECK(prefix <= store_->num_sets(stream),
                    "view prefix beyond committed watermark");
      return RrCollectionView(store_->streams_[stream].collection,
                              static_cast<std::size_t>(prefix));
    }

   private:
    friend class SampleStore;
    explicit ReadGuard(const SampleStore* store)
        : store_(store), lock_(store->mu_) {}

    const SampleStore* store_;
    std::shared_lock<std::shared_mutex> lock_;
  };

  ReadGuard Read() const { return ReadGuard(this); }

 private:
  struct Stream {
    RrCollection collection;
    /// Cursor into the stream's counter-based substream sequence; its
    /// `next_index` always equals `collection.num_sets()`.
    RngStream rng;
    std::atomic<std::uint64_t> committed{0};

    Stream(NodeId num_nodes, RngStream stream)
        : collection(num_nodes), rng(stream) {}
  };

  SampleStore(const Graph& graph, GeneratorKind kind,
              std::array<RngStream, kNumStreams> streams,
              const Options& options);

  const Graph* graph_;
  GeneratorKind kind_;
  NodeId num_nodes_;
  Options options_;
  mutable std::shared_mutex mu_;
  std::array<Stream, kNumStreams> streams_;
};

}  // namespace subsim

#endif  // SUBSIM_RRSET_SAMPLE_STORE_H_
