#include "subsim/rrset/rr_collection.h"

namespace subsim {

RrId RrCollection::Add(std::span<const NodeId> nodes, bool hit_sentinel) {
  const RrId id = static_cast<RrId>(num_sets());
  arena_.insert(arena_.end(), nodes.begin(), nodes.end());
  offsets_.push_back(arena_.size());
  hit_sentinel_.push_back(hit_sentinel ? 1 : 0);
  if (hit_sentinel) {
    ++num_hit_;
  }
  for (NodeId v : nodes) {
    SUBSIM_DCHECK(v < index_.size(), "RR member out of node range");
    index_[v].push_back(id);
  }
  return id;
}

void RrCollection::Clear() {
  offsets_.assign(1, 0);
  arena_.clear();
  hit_sentinel_.clear();
  num_hit_ = 0;
  for (auto& list : index_) {
    list.clear();
  }
}

}  // namespace subsim
