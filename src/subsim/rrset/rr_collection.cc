#include "subsim/rrset/rr_collection.h"

#include <algorithm>

namespace subsim {

RrId RrCollection::Add(std::span<const NodeId> nodes, bool hit_sentinel) {
  const RrId id = static_cast<RrId>(num_sets());
  arena_.insert(arena_.end(), nodes.begin(), nodes.end());
  offsets_.push_back(arena_.size());
  hit_sentinel_.push_back(hit_sentinel ? 1 : 0);
  hit_prefix_.push_back(hit_prefix_.back() + (hit_sentinel ? 1 : 0));
  for (NodeId v : nodes) {
    SUBSIM_DCHECK(v < index_.size(), "RR member out of node range");
    index_[v].push_back(id);
  }
  return id;
}

std::uint64_t RrCollection::ApproxMemoryBytes() const {
  // The inverted index holds exactly one RrId per node membership, plus one
  // vector header per graph node; per-vector slack is ignored.
  return arena_.size() * sizeof(NodeId) +
         offsets_.size() * sizeof(std::uint64_t) +
         hit_sentinel_.size() * sizeof(std::uint8_t) +
         hit_prefix_.size() * sizeof(std::uint32_t) +
         arena_.size() * sizeof(RrId) +
         index_.size() * sizeof(std::vector<RrId>);
}

void RrCollection::Clear() {
  offsets_.assign(1, 0);
  arena_.clear();
  hit_sentinel_.clear();
  hit_prefix_.assign(1, 0);
  for (auto& list : index_) {
    list.clear();
  }
}

std::span<const RrId> RrCollectionView::SetsContaining(NodeId v) const {
  const std::span<const RrId> full = collection_->SetsContaining(v);
  if (num_sets_ == collection_->num_sets()) {
    return full;
  }
  // Index lists are sorted ascending; keep ids < num_sets_.
  const auto end = std::lower_bound(full.begin(), full.end(),
                                    static_cast<RrId>(num_sets_));
  return full.first(static_cast<std::size_t>(end - full.begin()));
}

}  // namespace subsim
