#include "subsim/rrset/rr_collection.h"

#include <algorithm>

namespace subsim {

RrId RrCollection::Add(std::span<const NodeId> nodes, bool hit_sentinel) {
  const RrId id = static_cast<RrId>(num_sets());
  if (encoding_ == RrEncoding::kRaw) {
    arena_.insert(arena_.end(), nodes.begin(), nodes.end());
    offsets_.push_back(arena_.size());
  } else {
    // Delta blocks need strictly ascending ids; members are unique by the
    // generator contract, so a plain sort suffices. The index below is
    // built from the sorted copy — same memberships, same coverage.
    sort_scratch_.assign(nodes.begin(), nodes.end());
    std::sort(sort_scratch_.begin(), sort_scratch_.end());
    AppendDeltaVarintBlock(&byte_arena_, sort_scratch_);
    offsets_.push_back(byte_arena_.size());
    node_prefix_.push_back(node_prefix_.back() + sort_scratch_.size());
    nodes = sort_scratch_;
  }
  hit_sentinel_.push_back(hit_sentinel ? 1 : 0);
  hit_prefix_.push_back(hit_prefix_.back() + (hit_sentinel ? 1 : 0));
  for (NodeId v : nodes) {
    SUBSIM_DCHECK(v < index_.size(), "RR member out of node range");
    index_[v].push_back(id);
  }
  return id;
}

std::uint64_t RrCollection::ApproxMemoryBytes() const {
  // The inverted index holds exactly one RrId per node membership, plus one
  // vector header per graph node; per-vector slack is ignored. The arena is
  // charged at its *encoded* size so the serving cache's byte budget tracks
  // real RSS for either encoding.
  return arena_bytes() + offsets_.size() * sizeof(std::uint64_t) +
         (encoding_ == RrEncoding::kRaw
              ? 0
              : node_prefix_.size() * sizeof(std::uint64_t)) +
         hit_sentinel_.size() * sizeof(std::uint8_t) +
         hit_prefix_.size() * sizeof(std::uint32_t) +
         total_nodes() * sizeof(RrId) +
         index_.size() * sizeof(std::vector<RrId>);
}

void RrCollection::Clear() {
  offsets_.assign(1, 0);
  arena_.clear();
  byte_arena_.clear();
  node_prefix_.assign(1, 0);
  hit_sentinel_.clear();
  hit_prefix_.assign(1, 0);
  for (auto& list : index_) {
    list.clear();
  }
}

std::span<const RrId> RrCollectionView::SetsContaining(NodeId v) const {
  const std::span<const RrId> full = collection_->SetsContaining(v);
  if (num_sets_ == collection_->num_sets()) {
    return full;
  }
  // Index lists are sorted ascending; keep ids < num_sets_.
  const auto end = std::lower_bound(full.begin(), full.end(),
                                    static_cast<RrId>(num_sets_));
  return full.first(static_cast<std::size_t>(end - full.begin()));
}

}  // namespace subsim
