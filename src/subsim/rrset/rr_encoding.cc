#include "subsim/rrset/rr_encoding.h"

namespace subsim {

Result<RrEncoding> ParseRrEncoding(const std::string& name) {
  if (name == "raw") return RrEncoding::kRaw;
  if (name == "delta" || name == "delta-varint") {
    return RrEncoding::kDeltaVarint;
  }
  return Status::InvalidArgument("unknown rr encoding: " + name);
}

const char* RrEncodingName(RrEncoding encoding) {
  switch (encoding) {
    case RrEncoding::kRaw:
      return "raw";
    case RrEncoding::kDeltaVarint:
      return "delta";
  }
  return "?";
}

}  // namespace subsim
