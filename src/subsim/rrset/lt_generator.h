#ifndef SUBSIM_RRSET_LT_GENERATOR_H_
#define SUBSIM_RRSET_LT_GENERATOR_H_

#include <memory>
#include <vector>

#include "subsim/graph/graph.h"
#include "subsim/random/alias_table.h"
#include "subsim/rrset/rr_generator.h"
#include "subsim/util/bit_vector.h"
#include "subsim/util/status.h"

namespace subsim {

/// Linear Threshold RR-set generator.
///
/// Under the live-edge interpretation of LT, each node keeps at most one
/// incoming live edge: in-neighbor w is picked with probability p(w, v),
/// and no edge with probability 1 - sum_w p(w, v). A reverse traversal is
/// therefore a random walk that stops on a revisit, a dead end, or a
/// no-edge draw. Per step cost is O(1): uniform pick for equal weights,
/// alias-table pick otherwise (table built once per node at construction).
///
/// The per-node incoming weight sums must not exceed 1 (LT requirement);
/// `Create` validates this.
class LtGenerator final : public RrGenerator {
 public:
  /// Fails with InvalidArgument if some node's incoming weights sum above
  /// 1 + 1e-9. `graph` must outlive the generator.
  static Result<std::unique_ptr<LtGenerator>> Create(const Graph& graph);

  bool Generate(Rng& rng, std::vector<NodeId>* out) override;
  void SetSentinels(std::span<const NodeId> sentinels) override;
  const RrGenStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = RrGenStats{}; }
  const char* name() const override { return "lt"; }

 private:
  explicit LtGenerator(const Graph& graph);

  /// Picks the live in-neighbor of v, or kInvalidNode for "no live edge".
  NodeId PickInNeighbor(NodeId v, Rng& rng);

  const Graph& graph_;
  RrGenStats stats_;
  /// Alias tables for nodes with skewed in-weights; null for uniform ones.
  std::vector<std::unique_ptr<AliasTable>> alias_;
  BitVector activated_;
  BitVector sentinel_;
  bool has_sentinels_ = false;
};

}  // namespace subsim

#endif  // SUBSIM_RRSET_LT_GENERATOR_H_
