#ifndef SUBSIM_RRSET_LT_GENERATOR_H_
#define SUBSIM_RRSET_LT_GENERATOR_H_

#include <memory>
#include <vector>

#include "subsim/graph/graph.h"
#include "subsim/random/alias_table.h"
#include "subsim/rrset/rr_generator.h"
#include "subsim/util/bit_vector.h"
#include "subsim/util/prefetch.h"
#include "subsim/util/status.h"

namespace subsim {

/// The per-step draw primitive of the LT live-edge walk, factored out of
/// the scalar generator so the batched kernel consumes the identical RNG
/// stream: one NextDouble against the in-weight sum, then a uniform or
/// alias-table pick among the in-neighbors.
///
/// Owns the per-node alias tables (built once for nodes with skewed
/// in-weights). `graph` must outlive the picker.
class LtEdgePicker {
 public:
  /// LT requires each node's incoming weights to sum to at most 1; returns
  /// InvalidArgument naming the first violating node otherwise.
  static Status Validate(const Graph& graph);

  explicit LtEdgePicker(const Graph& graph);

  /// Picks the live in-neighbor of v, or kInvalidNode for "no live edge".
  /// Draw contract: zero draws when the in-weight sum is <= 0; otherwise
  /// one NextDouble, plus one pick draw only when the live-edge draw lands
  /// inside the sum. Bumps `stats->edges_examined` per live-edge draw.
  NodeId PickInNeighbor(NodeId v, Rng& rng, RrGenStats* stats) const {
    const PickMeta& pm = meta_[v];
    if (pm.weight_sum <= 0.0) {
      return kInvalidNode;
    }
    ++stats->edges_examined;
    if (rng.NextDouble() >= pm.weight_sum) {
      return kInvalidNode;  // no live in-edge for v
    }
    const auto sources = graph_.InSourcesAt(pm.begin, pm.degree);
    if (pm.has_alias == 0) {
      // Uniform in-weights: live edge uniform among in-neighbors.
      return sources[rng.UniformInt(sources.size())];
    }
    return sources[alias_[v]->Sample(rng)];
  }

  /// Prefetches the packed per-node descriptor `PickInNeighbor(v)` reads
  /// before it touches the in-row: weight sum, CSR position, and the
  /// alias marker in one cache line. Safe to issue the moment `v` is
  /// drawn; pair it with `PrefetchRow(v)` once the descriptor is resident.
  void PrefetchPick(NodeId v) const { PrefetchRead(meta_.data() + v); }

  /// Prefetches the leading lines of v's in-source row for an upcoming
  /// pick. Reads `meta_[v]` — expected warm after `PrefetchPick(v)`.
  /// Returns the number of prefetch instructions issued.
  unsigned PrefetchRow(NodeId v, unsigned max_lines = 2) const {
    const PickMeta& pm = meta_[v];
    if (pm.degree == 0) {
      return 0;
    }
    return PrefetchReadRange(graph_.InSourcesAt(pm.begin, pm.degree).data(),
                             pm.degree * sizeof(NodeId), max_lines);
  }

 private:
  /// Packed per-node pick descriptor: everything a walk step needs before
  /// indexing the in-source row, in one 16-byte record (four per cache
  /// line) — the live-edge draw threshold, the CSR position, and whether
  /// a skewed-weight alias table exists. Replaces separate weight-sum /
  /// offset / alias-pointer lookups on the hot path.
  struct PickMeta {
    double weight_sum = 0.0;
    std::uint32_t begin = 0;
    std::uint32_t degree : 31 = 0;
    std::uint32_t has_alias : 1 = 0;
  };
  static_assert(sizeof(PickMeta) == 16, "PickMeta must pack 4 per line");

  const Graph& graph_;
  std::vector<PickMeta> meta_;
  /// Alias tables for nodes with skewed in-weights; null for uniform ones.
  std::vector<std::unique_ptr<AliasTable>> alias_;
};

/// Linear Threshold RR-set generator.
///
/// Under the live-edge interpretation of LT, each node keeps at most one
/// incoming live edge: in-neighbor w is picked with probability p(w, v),
/// and no edge with probability 1 - sum_w p(w, v). A reverse traversal is
/// therefore a random walk that stops on a revisit, a dead end, or a
/// no-edge draw. Per step cost is O(1): uniform pick for equal weights,
/// alias-table pick otherwise (table built once per node at construction).
///
/// The per-node incoming weight sums must not exceed 1 (LT requirement);
/// `Create` validates this.
class LtGenerator final : public RrGenerator {
 public:
  /// Fails with InvalidArgument if some node's incoming weights sum above
  /// 1 + 1e-9. `graph` must outlive the generator.
  static Result<std::unique_ptr<LtGenerator>> Create(const Graph& graph);

  bool Generate(Rng& rng, std::vector<NodeId>* out) override;
  void SetSentinels(std::span<const NodeId> sentinels) override;
  const RrGenStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = RrGenStats{}; }
  const char* name() const override { return "lt"; }

 private:
  explicit LtGenerator(const Graph& graph);

  const Graph& graph_;
  LtEdgePicker picker_;
  RrGenStats stats_;
  BitVector activated_;
  BitVector sentinel_;
  bool has_sentinels_ = false;
};

}  // namespace subsim

#endif  // SUBSIM_RRSET_LT_GENERATOR_H_
