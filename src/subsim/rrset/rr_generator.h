#ifndef SUBSIM_RRSET_RR_GENERATOR_H_
#define SUBSIM_RRSET_RR_GENERATOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "subsim/graph/types.h"
#include "subsim/obs/obs_context.h"
#include "subsim/random/rng.h"
#include "subsim/rrset/rr_collection.h"

namespace subsim {

/// Cumulative cost counters for RR-set generation. `edges_examined` counts
/// candidate in-edges actually probed: for the vanilla generator this is
/// every in-edge of every activated node (one coin flip each); for SUBSIM
/// it is only the geometric-skip landings — the gap between the two is the
/// paper's Section 3 speedup. `geometric_skips` counts geometric draws in
/// the skip kernels (uniform, sorted-bucket, and bucket-indexed paths);
/// `rejection_accepts` counts accepted rejection trials in the non-uniform
/// kernels. Both stay zero for generators that use neither (vanilla, LT).
/// `batch_chunks` and `prefetch_lines` are produced only by the batched
/// kernel (see docs/rr_generation.md): chunks of sets generated per
/// `GenerateChunk` call, and software-prefetch instructions issued over the
/// CSR adjacency arrays.
struct RrGenStats {
  std::uint64_t sets_generated = 0;
  std::uint64_t nodes_added = 0;
  std::uint64_t edges_examined = 0;
  std::uint64_t sentinel_hits = 0;
  std::uint64_t geometric_skips = 0;
  std::uint64_t rejection_accepts = 0;
  std::uint64_t batch_chunks = 0;
  std::uint64_t prefetch_lines = 0;

  double AverageSetSize() const {
    return sets_generated == 0
               ? 0.0
               : static_cast<double>(nodes_added) / sets_generated;
  }
};

/// Strategy interface for generating random reverse-reachable sets.
///
/// A generator is bound to one graph. `Generate` produces one RR set rooted
/// at a uniformly random node. All generators support *hit-and-stop*
/// sentinel semantics (Algorithm 5): once a sentinel set is installed via
/// `SetSentinels`, a traversal terminates as soon as any sentinel node is
/// activated (the sentinel node is still appended, so the set is visibly
/// covered by the sentinel set).
///
/// Implementations keep per-instance scratch state (visited bitmap, queue)
/// and are therefore not thread-safe; use one generator per thread.
class RrGenerator {
 public:
  virtual ~RrGenerator() = default;

  /// Clears `*out` and fills it with one random RR set. Returns true if
  /// the traversal was stopped by a sentinel hit.
  virtual bool Generate(Rng& rng, std::vector<NodeId>* out) = 0;

  /// Installs (or, with an empty span, removes) the sentinel set.
  virtual void SetSentinels(std::span<const NodeId> sentinels) = 0;

  virtual const RrGenStats& stats() const = 0;
  virtual void ResetStats() = 0;
  virtual const char* name() const = 0;

  /// Generates `count` RR sets and appends them to `collection`. With a
  /// metrics registry attached to `obs`, the fill's `RrGenStats` delta is
  /// flushed to the `rr.*` counters and every set size is observed into the
  /// `rr.set_size` histogram (see docs/observability.md); the RNG stream is
  /// identical either way.
  void Fill(Rng& rng, std::size_t count, RrCollection* collection,
            const ObsContext& obs);
  void Fill(Rng& rng, std::size_t count, RrCollection* collection) {
    Fill(rng, count, collection, ObsContext());
  }
};

/// Adds `after - before` to the registry's `rr.*` counters. No-op when
/// `metrics` is null. Fill paths call this once per fill, never per set.
void FlushRrGenStatsDelta(const RrGenStats& before, const RrGenStats& after,
                          MetricsRegistry* metrics);

}  // namespace subsim

#endif  // SUBSIM_RRSET_RR_GENERATOR_H_
