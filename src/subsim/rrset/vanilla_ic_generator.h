#ifndef SUBSIM_RRSET_VANILLA_IC_GENERATOR_H_
#define SUBSIM_RRSET_VANILLA_IC_GENERATOR_H_

#include <vector>

#include "subsim/graph/graph.h"
#include "subsim/rrset/rr_generator.h"
#include "subsim/util/bit_vector.h"

namespace subsim {

/// Algorithm 2: the vanilla IC RR-set generator used by IMM, SSA and
/// OPIM-C. Reverse BFS from a random root; every in-edge of every activated
/// node gets its own Bernoulli(p(w, u)) coin flip — O(sum of in-degrees of
/// activated nodes) per set.
class VanillaIcGenerator final : public RrGenerator {
 public:
  /// `graph` must outlive the generator.
  explicit VanillaIcGenerator(const Graph& graph);

  bool Generate(Rng& rng, std::vector<NodeId>* out) override;
  void SetSentinels(std::span<const NodeId> sentinels) override;
  const RrGenStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = RrGenStats{}; }
  const char* name() const override { return "vanilla-ic"; }

 private:
  const Graph& graph_;
  RrGenStats stats_;
  BitVector activated_;
  BitVector sentinel_;
  bool has_sentinels_ = false;
  std::vector<NodeId> queue_;
};

}  // namespace subsim

#endif  // SUBSIM_RRSET_VANILLA_IC_GENERATOR_H_
