#ifndef SUBSIM_RRSET_VANILLA_IC_GENERATOR_H_
#define SUBSIM_RRSET_VANILLA_IC_GENERATOR_H_

#include <vector>

#include "subsim/graph/graph.h"
#include "subsim/rrset/rr_generator.h"
#include "subsim/util/bit_vector.h"

namespace subsim {

/// Per-step draw primitive of Algorithm 2's inner loop, shared verbatim by
/// the scalar generator and the batched kernel's sentinel path so both
/// consume the identical RNG stream: one Bernoulli(p(w, u)) per in-edge of
/// `u`, in in-list order. `try_activate(w)` runs for every successful flip
/// and returns true to stop the traversal (sentinel hit), which aborts the
/// edge loop mid-list — the remaining in-edges draw nothing. Returns true
/// iff the traversal was stopped.
template <class TryActivate>
inline bool ExpandVanillaInEdges(const Graph& graph, NodeId u, Rng& rng,
                                 std::uint64_t* edges_examined,
                                 TryActivate&& try_activate) {
  const auto sources = graph.InNeighbors(u);
  const auto weights = graph.InWeights(u);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    ++*edges_examined;
    if (!rng.Bernoulli(weights[i])) {
      continue;
    }
    if (try_activate(sources[i])) {
      return true;
    }
  }
  return false;
}

/// Algorithm 2: the vanilla IC RR-set generator used by IMM, SSA and
/// OPIM-C. Reverse BFS from a random root; every in-edge of every activated
/// node gets its own Bernoulli(p(w, u)) coin flip — O(sum of in-degrees of
/// activated nodes) per set.
class VanillaIcGenerator final : public RrGenerator {
 public:
  /// `graph` must outlive the generator.
  explicit VanillaIcGenerator(const Graph& graph);

  bool Generate(Rng& rng, std::vector<NodeId>* out) override;
  void SetSentinels(std::span<const NodeId> sentinels) override;
  const RrGenStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = RrGenStats{}; }
  const char* name() const override { return "vanilla-ic"; }

 private:
  const Graph& graph_;
  RrGenStats stats_;
  BitVector activated_;
  BitVector sentinel_;
  bool has_sentinels_ = false;
  std::vector<NodeId> queue_;
};

}  // namespace subsim

#endif  // SUBSIM_RRSET_VANILLA_IC_GENERATOR_H_
