#ifndef SUBSIM_RRSET_BATCH_KERNEL_H_
#define SUBSIM_RRSET_BATCH_KERNEL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "subsim/graph/graph.h"
#include "subsim/random/rng.h"
#include "subsim/rrset/generator_factory.h"
#include "subsim/rrset/rr_generator.h"
#include "subsim/util/status.h"

namespace subsim {

/// Structure-of-arrays destination for a chunk of RR sets: flattened node
/// ids plus per-set sizes and sentinel-hit flags, appended in set-index
/// order. The same layout as `parallel_fill`'s worker buffers, so the
/// merge step can splice a whole chunk without reshaping it.
struct BatchChunkSink {
  std::vector<NodeId>* nodes = nullptr;
  std::vector<std::uint32_t>* sizes = nullptr;
  std::vector<std::uint8_t>* hits = nullptr;
};

/// Frontier-batched RR-set generation kernel: the throughput-oriented
/// counterpart of the scalar `RrGenerator`, operating on whole scheduler
/// chunks instead of single sets.
///
/// Byte-identity contract: `GenerateChunk(base_seed, first_index, count,
/// sink)` appends exactly the sets that `count` scalar `Generate` calls on
/// `Rng::Substream(base_seed, first_index + i)` would produce, in index
/// order, for every generator kind, with or without sentinels — pinned by
/// `kernel_equivalence_test`. This holds because each set draws only from
/// its own counter-based substream and the per-step sampling primitives
/// are shared with the scalar generators (`ExpandVanillaInEdges`,
/// `SubsimExpandCore`, `LtEdgePicker`); batching rearranges memory access,
/// never draws.
///
/// What the batch shape buys (docs/rr_generation.md):
///  * interleaved lanes — every set in the chunk is a lane with its own
///    SoA frontier queue, and live lanes advance round-robin one frontier
///    node per visit, so each lane's prefetched adjacency row streams in
///    while dozens of other lanes execute (memory-level parallelism, the
///    dominant win on graphs larger than cache);
///  * epoch-stamped visited marks — one shared `uint32_t` stamp array,
///    one epoch per in-flight set, no per-set clearing (`EpochMarks`);
///    inter-lane stamp collisions resolve against the lane's own node
///    list, so membership stays exact;
///  * lane refill: a slot that finishes its set immediately reseeds with
///    the chunk's next index (prefetching the new root's stamp and
///    descriptor lines first), so the heavy tail of WC set sizes cannot
///    drain the lane pool into serial execution;
///  * bulk inline RNG draws (`Rng::NextU64Batch`) for unconditional
///    Bernoulli edge loops;
///  * discovery-time software prefetch over the CSR in-adjacency and the
///    kernels' packed per-node descriptors (`Graph::PrefetchInMeta` /
///    `PrefetchInRow`, `SubsimExpandCore::PrefetchPlan` / `PrefetchRow`,
///    `LtEdgePicker::PrefetchPick` / `PrefetchRow`).
///
/// Like `RrGenerator`, a kernel holds per-instance scratch and is not
/// thread-safe; `FillCollection` builds one per worker. The interface is
/// deliberately device-shaped — a chunk in, a flat SoA buffer out, no
/// callbacks on the hot path — so an accelerator backend is just another
/// implementation of `GenerateChunk`.
class BatchRrKernel {
 public:
  virtual ~BatchRrKernel() = default;

  /// Builds the kernel for `kind`; fails for exactly the inputs the scalar
  /// factory rejects (e.g. LT weight-sum violations). `graph` must be
  /// non-empty and outlive the kernel.
  static Result<std::unique_ptr<BatchRrKernel>> Create(GeneratorKind kind,
                                                       const Graph& graph);

  /// Installs (or, with an empty span, removes) the sentinel set.
  virtual void SetSentinels(std::span<const NodeId> sentinels) = 0;

  /// Appends the sets of stream indices [first_index, first_index + count)
  /// to `sink`, byte-identical to the scalar generator (see above).
  virtual void GenerateChunk(std::uint64_t base_seed,
                             std::uint64_t first_index, std::size_t count,
                             const BatchChunkSink& sink) = 0;

  virtual const RrGenStats& stats() const = 0;
  virtual void ResetStats() = 0;
  virtual const char* name() const = 0;
};

}  // namespace subsim

#endif  // SUBSIM_RRSET_BATCH_KERNEL_H_
