#include "subsim/rrset/lt_generator.h"

#include <string>

namespace subsim {

Result<std::unique_ptr<LtGenerator>> LtGenerator::Create(const Graph& graph) {
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.InWeightSum(v) > 1.0 + 1e-9) {
      return Status::InvalidArgument(
          "LT requires per-node incoming weights to sum to <= 1; node " +
          std::to_string(v) + " sums to " +
          std::to_string(graph.InWeightSum(v)));
    }
  }
  return std::unique_ptr<LtGenerator>(new LtGenerator(graph));
}

LtGenerator::LtGenerator(const Graph& graph) : graph_(graph) {
  alias_.resize(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.InDegree(v) == 0 || graph.HasUniformInWeights(v)) {
      continue;  // uniform pick; no table needed
    }
    const auto weights = graph.InWeights(v);
    alias_[v] = std::make_unique<AliasTable>(
        std::vector<double>(weights.begin(), weights.end()));
  }
  activated_.Resize(graph.num_nodes());
  sentinel_.Resize(graph.num_nodes());
}

void LtGenerator::SetSentinels(std::span<const NodeId> sentinels) {
  sentinel_.ResetTouched();
  has_sentinels_ = !sentinels.empty();
  for (NodeId v : sentinels) {
    sentinel_.Set(v);
  }
}

NodeId LtGenerator::PickInNeighbor(NodeId v, Rng& rng) {
  const double sum = graph_.InWeightSum(v);
  if (sum <= 0.0) {
    return kInvalidNode;
  }
  ++stats_.edges_examined;
  if (rng.NextDouble() >= sum) {
    return kInvalidNode;  // no live in-edge for v
  }
  const auto sources = graph_.InNeighbors(v);
  if (alias_[v] == nullptr) {
    // Uniform in-weights: live edge uniform among in-neighbors.
    return sources[rng.UniformInt(sources.size())];
  }
  return sources[alias_[v]->Sample(rng)];
}

bool LtGenerator::Generate(Rng& rng, std::vector<NodeId>* out) {
  out->clear();
  SUBSIM_CHECK(graph_.num_nodes() > 0, "cannot sample from empty graph");

  NodeId cur = static_cast<NodeId>(rng.UniformInt(graph_.num_nodes()));
  out->push_back(cur);
  activated_.Set(cur);
  bool hit = has_sentinels_ && sentinel_.Get(cur);

  while (!hit) {
    const NodeId next = PickInNeighbor(cur, rng);
    if (next == kInvalidNode || !activated_.Set(next)) {
      break;  // dead end or walked into the existing set
    }
    out->push_back(next);
    if (has_sentinels_ && sentinel_.Get(next)) {
      hit = true;
      break;
    }
    cur = next;
  }

  activated_.ResetTouched();
  ++stats_.sets_generated;
  stats_.nodes_added += out->size();
  if (hit) {
    ++stats_.sentinel_hits;
  }
  return hit;
}

}  // namespace subsim
