#include "subsim/rrset/lt_generator.h"

#include <string>

namespace subsim {

Status LtEdgePicker::Validate(const Graph& graph) {
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.InWeightSum(v) > 1.0 + 1e-9) {
      return Status::InvalidArgument(
          "LT requires per-node incoming weights to sum to <= 1; node " +
          std::to_string(v) + " sums to " +
          std::to_string(graph.InWeightSum(v)));
    }
  }
  return Status::Ok();
}

LtEdgePicker::LtEdgePicker(const Graph& graph) : graph_(graph) {
  const NodeId n = graph.num_nodes();
  meta_.assign(n, PickMeta{});
  alias_.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    const InRowMeta& row = graph.InMeta(v);
    PickMeta& pm = meta_[v];
    pm.weight_sum = graph.InWeightSum(v);
    pm.begin = row.begin;
    SUBSIM_CHECK(row.degree < (1u << 31), "in-degree overflows PickMeta");
    pm.degree = row.degree;
    if (row.degree == 0 || graph.HasUniformInWeights(v)) {
      continue;  // uniform pick; no table needed
    }
    pm.has_alias = 1;
    const auto weights = graph.InWeights(v);
    alias_[v] = std::make_unique<AliasTable>(
        std::vector<double>(weights.begin(), weights.end()));
  }
}

Result<std::unique_ptr<LtGenerator>> LtGenerator::Create(const Graph& graph) {
  Status status = LtEdgePicker::Validate(graph);
  if (!status.ok()) {
    return status;
  }
  return std::unique_ptr<LtGenerator>(new LtGenerator(graph));
}

LtGenerator::LtGenerator(const Graph& graph)
    : graph_(graph), picker_(graph) {
  activated_.Resize(graph.num_nodes());
  sentinel_.Resize(graph.num_nodes());
}

void LtGenerator::SetSentinels(std::span<const NodeId> sentinels) {
  sentinel_.ResetTouched();
  has_sentinels_ = !sentinels.empty();
  for (NodeId v : sentinels) {
    sentinel_.Set(v);
  }
}

bool LtGenerator::Generate(Rng& rng, std::vector<NodeId>* out) {
  out->clear();
  SUBSIM_CHECK(graph_.num_nodes() > 0, "cannot sample from empty graph");

  NodeId cur = static_cast<NodeId>(rng.UniformInt(graph_.num_nodes()));
  out->push_back(cur);
  activated_.Set(cur);
  bool hit = has_sentinels_ && sentinel_.Get(cur);

  while (!hit) {
    const NodeId next = picker_.PickInNeighbor(cur, rng, &stats_);
    if (next == kInvalidNode || !activated_.Set(next)) {
      break;  // dead end or walked into the existing set
    }
    out->push_back(next);
    if (has_sentinels_ && sentinel_.Get(next)) {
      hit = true;
      break;
    }
    cur = next;
  }

  activated_.ResetTouched();
  ++stats_.sets_generated;
  stats_.nodes_added += out->size();
  if (hit) {
    ++stats_.sentinel_hits;
  }
  return hit;
}

}  // namespace subsim
