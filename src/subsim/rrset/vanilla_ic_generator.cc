#include "subsim/rrset/vanilla_ic_generator.h"

namespace subsim {

VanillaIcGenerator::VanillaIcGenerator(const Graph& graph) : graph_(graph) {
  activated_.Resize(graph.num_nodes());
  sentinel_.Resize(graph.num_nodes());
}

void VanillaIcGenerator::SetSentinels(std::span<const NodeId> sentinels) {
  sentinel_.ResetTouched();
  has_sentinels_ = !sentinels.empty();
  for (NodeId v : sentinels) {
    sentinel_.Set(v);
  }
}

bool VanillaIcGenerator::Generate(Rng& rng, std::vector<NodeId>* out) {
  out->clear();
  SUBSIM_CHECK(graph_.num_nodes() > 0, "cannot sample from empty graph");

  const NodeId root = static_cast<NodeId>(rng.UniformInt(graph_.num_nodes()));
  out->push_back(root);
  activated_.Set(root);
  bool hit = has_sentinels_ && sentinel_.Get(root);

  if (!hit) {
    queue_.clear();
    queue_.push_back(root);
    std::size_t head = 0;
    while (head < queue_.size() && !hit) {
      const NodeId u = queue_[head++];
      const auto sources = graph_.InNeighbors(u);
      const auto weights = graph_.InWeights(u);
      for (std::size_t i = 0; i < sources.size(); ++i) {
        ++stats_.edges_examined;
        if (!rng.Bernoulli(weights[i])) {
          continue;
        }
        const NodeId w = sources[i];
        if (!activated_.Set(w)) {
          continue;  // already active
        }
        out->push_back(w);
        if (has_sentinels_ && sentinel_.Get(w)) {
          hit = true;
          break;
        }
        queue_.push_back(w);
      }
    }
  }

  activated_.ResetTouched();
  ++stats_.sets_generated;
  stats_.nodes_added += out->size();
  if (hit) {
    ++stats_.sentinel_hits;
  }
  return hit;
}

}  // namespace subsim
