#include "subsim/rrset/vanilla_ic_generator.h"

namespace subsim {

VanillaIcGenerator::VanillaIcGenerator(const Graph& graph) : graph_(graph) {
  activated_.Resize(graph.num_nodes());
  sentinel_.Resize(graph.num_nodes());
}

void VanillaIcGenerator::SetSentinels(std::span<const NodeId> sentinels) {
  sentinel_.ResetTouched();
  has_sentinels_ = !sentinels.empty();
  for (NodeId v : sentinels) {
    sentinel_.Set(v);
  }
}

bool VanillaIcGenerator::Generate(Rng& rng, std::vector<NodeId>* out) {
  out->clear();
  SUBSIM_CHECK(graph_.num_nodes() > 0, "cannot sample from empty graph");

  const NodeId root = static_cast<NodeId>(rng.UniformInt(graph_.num_nodes()));
  out->push_back(root);
  activated_.Set(root);
  bool hit = has_sentinels_ && sentinel_.Get(root);

  if (!hit) {
    queue_.clear();
    queue_.push_back(root);
    std::size_t head = 0;
    const auto try_activate = [&](NodeId w) {
      if (!activated_.Set(w)) {
        return false;  // already active
      }
      out->push_back(w);
      if (has_sentinels_ && sentinel_.Get(w)) {
        return true;
      }
      queue_.push_back(w);
      return false;
    };
    while (head < queue_.size() && !hit) {
      hit = ExpandVanillaInEdges(graph_, queue_[head++], rng,
                                 &stats_.edges_examined, try_activate);
    }
  }

  activated_.ResetTouched();
  ++stats_.sets_generated;
  stats_.nodes_added += out->size();
  if (hit) {
    ++stats_.sentinel_hits;
  }
  return hit;
}

}  // namespace subsim
