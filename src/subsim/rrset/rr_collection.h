#ifndef SUBSIM_RRSET_RR_COLLECTION_H_
#define SUBSIM_RRSET_RR_COLLECTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "subsim/graph/types.h"
#include "subsim/util/check.h"

namespace subsim {

/// Identifier of an RR set inside an `RrCollection`.
using RrId = std::uint32_t;

class RrCollectionView;

/// A growable pool of reverse-reachable sets with an inverted index.
///
/// Storage is a single arena (offsets + node array), so appending RR sets
/// does one amortized allocation and iteration is cache-friendly. The
/// inverted index (node -> ids of RR sets containing it) is maintained on
/// insert; it is what makes the greedy max-coverage pass O(total RR size).
///
/// Collections also record, per set, whether its generation was truncated
/// by a sentinel hit (Algorithm 5). Such sets are covered by the sentinel
/// set by construction; `IM-Sentinel` (Algorithm 8 line 5) excludes them
/// from the residual greedy.
///
/// Growth is strictly append-only (ids are stable, index lists stay sorted
/// ascending), which is what makes the prefix-snapshot API (`Prefix`)
/// meaningful: the first N sets never change once added, so a consumer can
/// keep evaluating a fixed prefix while the collection keeps growing —
/// the property the serving cache (`serve/rr_sketch_cache`) is built on.
class RrCollection {
 public:
  explicit RrCollection(NodeId num_nodes) : index_(num_nodes) {}

  /// Appends one RR set. `nodes` are the members (root included, each node
  /// at most once); `hit_sentinel` marks sentinel-truncated generation.
  /// Returns the new set's id.
  RrId Add(std::span<const NodeId> nodes, bool hit_sentinel);

  std::size_t num_sets() const { return offsets_.size() - 1; }

  /// Total number of node memberships across all sets.
  std::uint64_t total_nodes() const { return arena_.size(); }

  /// Node memberships across the first `num_sets` sets.
  std::uint64_t total_nodes_in_prefix(std::size_t num_sets) const {
    SUBSIM_DCHECK(num_sets < offsets_.size(), "prefix out of range");
    return offsets_[num_sets];
  }

  /// Average RR-set size (0 when empty) — the quantity Figure 3(b) reports.
  double average_size() const {
    return num_sets() == 0
               ? 0.0
               : static_cast<double>(total_nodes()) / num_sets();
  }

  std::span<const NodeId> Set(RrId id) const {
    SUBSIM_DCHECK(id < num_sets(), "RR id out of range");
    return {arena_.data() + offsets_[id], arena_.data() + offsets_[id + 1]};
  }

  bool HitSentinel(RrId id) const {
    SUBSIM_DCHECK(id < num_sets(), "RR id out of range");
    return hit_sentinel_[id] != 0;
  }

  /// Number of sets with the sentinel-hit flag.
  std::size_t num_hit_sentinel() const { return hit_prefix_.back(); }

  /// Sentinel-hit sets among the first `num_sets` sets.
  std::size_t num_hit_sentinel_in_prefix(std::size_t num_sets) const {
    SUBSIM_DCHECK(num_sets < hit_prefix_.size(), "prefix out of range");
    return hit_prefix_[num_sets];
  }

  /// Ids of the RR sets that contain `v`, sorted ascending (sets are
  /// appended with increasing ids).
  std::span<const RrId> SetsContaining(NodeId v) const {
    SUBSIM_DCHECK(v < index_.size(), "node out of range");
    return index_[v];
  }

  NodeId num_graph_nodes() const {
    return static_cast<NodeId>(index_.size());
  }

  /// Snapshot of the first `num_sets` sets (see `RrCollectionView`).
  RrCollectionView Prefix(std::size_t num_sets) const;

  /// Approximate heap footprint in bytes (arena, offsets, flags, and the
  /// inverted index). Used by the serving cache's byte-budget eviction.
  std::uint64_t ApproxMemoryBytes() const;

  /// Removes all sets but keeps the node capacity.
  void Clear();

 private:
  std::vector<std::uint64_t> offsets_{0};
  std::vector<NodeId> arena_;
  std::vector<std::uint8_t> hit_sentinel_;
  /// hit_prefix_[i] = sentinel-hit sets among the first i sets; maintained
  /// on Add so any prefix count is O(1).
  std::vector<std::uint32_t> hit_prefix_{0};
  std::vector<std::vector<RrId>> index_;
};

/// A read-only snapshot of the first `num_sets()` sets of an `RrCollection`.
///
/// The view stores only (parent, prefix length) and resolves every read
/// through the parent, so it stays valid while the parent grows — appends
/// never mutate existing sets. It is NOT valid across `Clear()` or parent
/// destruction, and concurrent use requires the reader/writer discipline of
/// `SampleStore` (reads and appends must be externally ordered).
///
/// Implicitly constructible from a collection (full-length view), so APIs
/// taking a view accept a plain `RrCollection` unchanged.
class RrCollectionView {
 public:
  /* implicit */ RrCollectionView(  // NOLINT(runtime/explicit)
      const RrCollection& collection)
      : collection_(&collection), num_sets_(collection.num_sets()) {}

  RrCollectionView(const RrCollection& collection, std::size_t num_sets)
      : collection_(&collection), num_sets_(num_sets) {
    SUBSIM_DCHECK(num_sets <= collection.num_sets(),
                  "view prefix exceeds collection size");
  }

  std::size_t num_sets() const { return num_sets_; }

  std::uint64_t total_nodes() const {
    return collection_->total_nodes_in_prefix(num_sets_);
  }

  std::span<const NodeId> Set(RrId id) const {
    SUBSIM_DCHECK(id < num_sets_, "RR id outside view prefix");
    return collection_->Set(id);
  }

  bool HitSentinel(RrId id) const {
    SUBSIM_DCHECK(id < num_sets_, "RR id outside view prefix");
    return collection_->HitSentinel(id);
  }

  std::size_t num_hit_sentinel() const {
    return collection_->num_hit_sentinel_in_prefix(num_sets_);
  }

  /// Ids < num_sets() of the RR sets containing `v`. O(log) to trim the
  /// parent's (ascending) list to the prefix; O(1) for full-length views.
  std::span<const RrId> SetsContaining(NodeId v) const;

  NodeId num_graph_nodes() const { return collection_->num_graph_nodes(); }

  const RrCollection& collection() const { return *collection_; }

 private:
  const RrCollection* collection_;
  std::size_t num_sets_;
};

inline RrCollectionView RrCollection::Prefix(std::size_t num_sets) const {
  return RrCollectionView(*this, num_sets);
}

}  // namespace subsim

#endif  // SUBSIM_RRSET_RR_COLLECTION_H_
