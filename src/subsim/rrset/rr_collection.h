#ifndef SUBSIM_RRSET_RR_COLLECTION_H_
#define SUBSIM_RRSET_RR_COLLECTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "subsim/graph/types.h"
#include "subsim/util/check.h"

namespace subsim {

/// Identifier of an RR set inside an `RrCollection`.
using RrId = std::uint32_t;

/// A growable pool of reverse-reachable sets with an inverted index.
///
/// Storage is a single arena (offsets + node array), so appending RR sets
/// does one amortized allocation and iteration is cache-friendly. The
/// inverted index (node -> ids of RR sets containing it) is maintained on
/// insert; it is what makes the greedy max-coverage pass O(total RR size).
///
/// Collections also record, per set, whether its generation was truncated
/// by a sentinel hit (Algorithm 5). Such sets are covered by the sentinel
/// set by construction; `IM-Sentinel` (Algorithm 8 line 5) excludes them
/// from the residual greedy.
class RrCollection {
 public:
  explicit RrCollection(NodeId num_nodes) : index_(num_nodes) {}

  /// Appends one RR set. `nodes` are the members (root included, each node
  /// at most once); `hit_sentinel` marks sentinel-truncated generation.
  /// Returns the new set's id.
  RrId Add(std::span<const NodeId> nodes, bool hit_sentinel);

  std::size_t num_sets() const { return offsets_.size() - 1; }

  /// Total number of node memberships across all sets.
  std::uint64_t total_nodes() const { return arena_.size(); }

  /// Average RR-set size (0 when empty) — the quantity Figure 3(b) reports.
  double average_size() const {
    return num_sets() == 0
               ? 0.0
               : static_cast<double>(total_nodes()) / num_sets();
  }

  std::span<const NodeId> Set(RrId id) const {
    SUBSIM_DCHECK(id < num_sets(), "RR id out of range");
    return {arena_.data() + offsets_[id], arena_.data() + offsets_[id + 1]};
  }

  bool HitSentinel(RrId id) const {
    SUBSIM_DCHECK(id < num_sets(), "RR id out of range");
    return hit_sentinel_[id] != 0;
  }

  /// Number of sets with the sentinel-hit flag.
  std::size_t num_hit_sentinel() const { return num_hit_; }

  /// Ids of the RR sets that contain `v`.
  std::span<const RrId> SetsContaining(NodeId v) const {
    SUBSIM_DCHECK(v < index_.size(), "node out of range");
    return index_[v];
  }

  NodeId num_graph_nodes() const {
    return static_cast<NodeId>(index_.size());
  }

  /// Removes all sets but keeps the node capacity.
  void Clear();

 private:
  std::vector<std::uint64_t> offsets_{0};
  std::vector<NodeId> arena_;
  std::vector<std::uint8_t> hit_sentinel_;
  std::size_t num_hit_ = 0;
  std::vector<std::vector<RrId>> index_;
};

}  // namespace subsim

#endif  // SUBSIM_RRSET_RR_COLLECTION_H_
