#ifndef SUBSIM_RRSET_RR_COLLECTION_H_
#define SUBSIM_RRSET_RR_COLLECTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "subsim/graph/types.h"
#include "subsim/rrset/rr_encoding.h"
#include "subsim/util/check.h"

namespace subsim {

/// Identifier of an RR set inside an `RrCollection`.
using RrId = std::uint32_t;

class RrCollectionView;

/// Read-only handle to one stored RR set.
///
/// This is the only way to read set contents: the collection's storage
/// encoding (`RrEncoding`) is a private detail behind it, so consumers are
/// insulated from the arena layout. Three access shapes:
///
///  - `size()`: member count, O(1) for every encoding;
///  - `ForEachNode(fn)`: visit each member in storage order (generator
///    discovery order for kRaw, ascending for kDeltaVarint) without
///    materializing anything — the streaming path;
///  - `Decode(&scratch)`: bulk-decode into a caller-owned scratch vector
///    and return a span of all members — the batch path. Zero-copy for
///    kRaw (the span aliases the arena and `scratch` is untouched);
///    kDeltaVarint decodes into `scratch`. Reuse one scratch across calls
///    (per thread — the view itself is freely copyable and const).
///
/// Views borrow the parent arena: valid while the parent collection is
/// alive and not `Clear()`ed, like the spans the old API returned.
class RrSetView {
 public:
  RrSetView() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  RrEncoding encoding() const { return encoding_; }

  template <typename Fn>
  void ForEachNode(Fn&& fn) const {
    if (encoding_ == RrEncoding::kRaw) {
      for (std::size_t i = 0; i < size_; ++i) {
        fn(raw_[i]);
      }
      return;
    }
    const std::uint8_t* p = bytes_;
    std::uint64_t value = 0;
    NodeId prev = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      p = DecodeVarint(p, &value);
      prev = i == 0 ? static_cast<NodeId>(value)
                    : static_cast<NodeId>(prev + value);
      fn(prev);
    }
  }

  /// All members as one span; see class comment for the scratch contract.
  std::span<const NodeId> Decode(std::vector<NodeId>* scratch) const {
    if (encoding_ == RrEncoding::kRaw) {
      return {raw_, size_};
    }
    scratch->clear();
    scratch->reserve(size_);
    ForEachNode([scratch](NodeId v) { scratch->push_back(v); });
    return {scratch->data(), scratch->size()};
  }

  /// Allocating convenience for tests and tooling; hot paths should reuse
  /// a scratch via `Decode`.
  std::vector<NodeId> ToVector() const {
    std::vector<NodeId> out;
    out.reserve(size_);
    ForEachNode([&out](NodeId v) { out.push_back(v); });
    return out;
  }

 private:
  friend class RrCollection;

  RrSetView(const NodeId* raw, std::size_t size)
      : raw_(raw), size_(size), encoding_(RrEncoding::kRaw) {}
  RrSetView(const std::uint8_t* bytes, std::size_t size)
      : bytes_(bytes), size_(size), encoding_(RrEncoding::kDeltaVarint) {}

  const NodeId* raw_ = nullptr;
  const std::uint8_t* bytes_ = nullptr;
  std::size_t size_ = 0;
  RrEncoding encoding_ = RrEncoding::kRaw;
};

/// A growable pool of reverse-reachable sets with an inverted index.
///
/// Storage is a single arena (offsets + node or byte array, selected by the
/// `RrEncoding` passed at construction), so appending RR sets does one
/// amortized allocation and iteration is cache-friendly. Set contents are
/// read exclusively through `View(id)` (`RrSetView`); the encoding never
/// leaks past it. The inverted index (node -> ids of RR sets containing it)
/// is maintained on insert regardless of encoding; it is what makes the
/// greedy max-coverage pass O(total RR size) — and why the selected seeds
/// are identical across encodings.
///
/// Collections also record, per set, whether its generation was truncated
/// by a sentinel hit (Algorithm 5). Such sets are covered by the sentinel
/// set by construction; `IM-Sentinel` (Algorithm 8 line 5) excludes them
/// from the residual greedy.
///
/// Growth is strictly append-only (ids are stable, index lists stay sorted
/// ascending), which is what makes the prefix-snapshot API (`Prefix`)
/// meaningful: the first N sets never change once added, so a consumer can
/// keep evaluating a fixed prefix while the collection keeps growing —
/// the property the serving cache (`serve/rr_sketch_cache`) is built on.
class RrCollection {
 public:
  explicit RrCollection(NodeId num_nodes,
                        RrEncoding encoding = RrEncoding::kRaw)
      : encoding_(encoding), index_(num_nodes) {}

  /// Appends one RR set. `nodes` are the members (root included, each node
  /// at most once); `hit_sentinel` marks sentinel-truncated generation.
  /// kRaw stores `nodes` verbatim; kDeltaVarint stores them sorted
  /// ascending (membership-preserving, so coverage is unaffected).
  /// Returns the new set's id.
  RrId Add(std::span<const NodeId> nodes, bool hit_sentinel);

  RrEncoding encoding() const { return encoding_; }

  std::size_t num_sets() const { return offsets_.size() - 1; }

  /// Total number of node memberships across all sets.
  std::uint64_t total_nodes() const {
    return encoding_ == RrEncoding::kRaw ? arena_.size()
                                         : node_prefix_.back();
  }

  /// Node memberships across the first `num_sets` sets.
  std::uint64_t total_nodes_in_prefix(std::size_t num_sets) const {
    SUBSIM_DCHECK(num_sets < offsets_.size(), "prefix out of range");
    return encoding_ == RrEncoding::kRaw ? offsets_[num_sets]
                                         : node_prefix_[num_sets];
  }

  /// Average RR-set size (0 when empty) — the quantity Figure 3(b) reports.
  double average_size() const {
    return num_sets() == 0
               ? 0.0
               : static_cast<double>(total_nodes()) / num_sets();
  }

  /// Handle to set `id`'s contents. Borrows the arena (see `RrSetView`).
  RrSetView View(RrId id) const {
    SUBSIM_DCHECK(id < num_sets(), "RR id out of range");
    if (encoding_ == RrEncoding::kRaw) {
      return RrSetView(
          arena_.data() + offsets_[id],
          static_cast<std::size_t>(offsets_[id + 1] - offsets_[id]));
    }
    return RrSetView(
        byte_arena_.data() + offsets_[id],
        static_cast<std::size_t>(node_prefix_[id + 1] - node_prefix_[id]));
  }

  bool HitSentinel(RrId id) const {
    SUBSIM_DCHECK(id < num_sets(), "RR id out of range");
    return hit_sentinel_[id] != 0;
  }

  /// Number of sets with the sentinel-hit flag.
  std::size_t num_hit_sentinel() const { return hit_prefix_.back(); }

  /// Sentinel-hit sets among the first `num_sets` sets.
  std::size_t num_hit_sentinel_in_prefix(std::size_t num_sets) const {
    SUBSIM_DCHECK(num_sets < hit_prefix_.size(), "prefix out of range");
    return hit_prefix_[num_sets];
  }

  /// Ids of the RR sets that contain `v`, sorted ascending (sets are
  /// appended with increasing ids).
  std::span<const RrId> SetsContaining(NodeId v) const {
    SUBSIM_DCHECK(v < index_.size(), "node out of range");
    return index_[v];
  }

  NodeId num_graph_nodes() const {
    return static_cast<NodeId>(index_.size());
  }

  /// Snapshot of the first `num_sets` sets (see `RrCollectionView`).
  RrCollectionView Prefix(std::size_t num_sets) const;

  /// Bytes the set arena itself occupies under the active encoding — the
  /// quantity the `rr.arena_bytes` gauge and the compression-ratio bench
  /// report (4 * total_nodes for kRaw, the varint block sizes otherwise).
  std::uint64_t arena_bytes() const {
    return encoding_ == RrEncoding::kRaw ? arena_.size() * sizeof(NodeId)
                                         : byte_arena_.size();
  }

  /// Approximate heap footprint in bytes (encoded arena, offsets, flags,
  /// and the inverted index). Used by the serving cache's byte-budget
  /// eviction; charges the *encoded* arena so a delta-encoded store spends
  /// proportionally less budget than a raw one.
  std::uint64_t ApproxMemoryBytes() const;

  /// Removes all sets but keeps the node capacity and encoding.
  void Clear();

 private:
  RrEncoding encoding_;
  /// Per-set boundaries into the active arena: node offsets into `arena_`
  /// for kRaw, byte offsets into `byte_arena_` for kDeltaVarint.
  std::vector<std::uint64_t> offsets_{0};
  std::vector<NodeId> arena_;              // kRaw only
  std::vector<std::uint8_t> byte_arena_;   // kDeltaVarint only
  /// kDeltaVarint only: node_prefix_[i] = memberships among the first i
  /// sets, so sizes and prefix totals stay O(1) when offsets are bytes.
  std::vector<std::uint64_t> node_prefix_{0};
  /// Reused by Add's kDeltaVarint sort; not part of the logical state.
  std::vector<NodeId> sort_scratch_;
  std::vector<std::uint8_t> hit_sentinel_;
  /// hit_prefix_[i] = sentinel-hit sets among the first i sets; maintained
  /// on Add so any prefix count is O(1).
  std::vector<std::uint32_t> hit_prefix_{0};
  std::vector<std::vector<RrId>> index_;
};

/// A read-only snapshot of the first `num_sets()` sets of an `RrCollection`.
///
/// The view stores only (parent, prefix length) and resolves every read
/// through the parent, so it stays valid while the parent grows — appends
/// never mutate existing sets. It is NOT valid across `Clear()` or parent
/// destruction, and concurrent use requires the reader/writer discipline of
/// `SampleStore` (reads and appends must be externally ordered).
///
/// Implicitly constructible from a collection (full-length view), so APIs
/// taking a view accept a plain `RrCollection` unchanged.
class RrCollectionView {
 public:
  /* implicit */ RrCollectionView(  // NOLINT(runtime/explicit)
      const RrCollection& collection)
      : collection_(&collection), num_sets_(collection.num_sets()) {}

  RrCollectionView(const RrCollection& collection, std::size_t num_sets)
      : collection_(&collection), num_sets_(num_sets) {
    SUBSIM_DCHECK(num_sets <= collection.num_sets(),
                  "view prefix exceeds collection size");
  }

  std::size_t num_sets() const { return num_sets_; }

  std::uint64_t total_nodes() const {
    return collection_->total_nodes_in_prefix(num_sets_);
  }

  RrSetView View(RrId id) const {
    SUBSIM_DCHECK(id < num_sets_, "RR id outside view prefix");
    return collection_->View(id);
  }

  bool HitSentinel(RrId id) const {
    SUBSIM_DCHECK(id < num_sets_, "RR id outside view prefix");
    return collection_->HitSentinel(id);
  }

  std::size_t num_hit_sentinel() const {
    return collection_->num_hit_sentinel_in_prefix(num_sets_);
  }

  /// Ids < num_sets() of the RR sets containing `v`. O(log) to trim the
  /// parent's (ascending) list to the prefix; O(1) for full-length views.
  std::span<const RrId> SetsContaining(NodeId v) const;

  NodeId num_graph_nodes() const { return collection_->num_graph_nodes(); }

  const RrCollection& collection() const { return *collection_; }

 private:
  const RrCollection* collection_;
  std::size_t num_sets_;
};

inline RrCollectionView RrCollection::Prefix(std::size_t num_sets) const {
  return RrCollectionView(*this, num_sets);
}

}  // namespace subsim

#endif  // SUBSIM_RRSET_RR_COLLECTION_H_
