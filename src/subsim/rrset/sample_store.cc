#include "subsim/rrset/sample_store.h"

#include <utility>

#include "subsim/rrset/parallel_fill.h"

namespace subsim {

SampleStore::SampleStore(const Graph& graph, GeneratorKind kind,
                         std::array<RngStream, kNumStreams> streams,
                         const Options& options)
    : graph_(&graph),
      kind_(kind),
      num_nodes_(graph.num_nodes()),
      options_(options),
      streams_{Stream(graph.num_nodes(), streams[0]),
               Stream(graph.num_nodes(), streams[1])} {}

Result<std::unique_ptr<SampleStore>> SampleStore::Create(
    const Graph& graph, GeneratorKind kind,
    std::array<RngStream, kNumStreams> streams, const Options& options) {
  // Fills construct their own generators, but probe once here so a graph
  // the kind rejects (e.g. LT weight sums) fails at creation, not on the
  // first EnsureSets.
  Result<std::unique_ptr<RrGenerator>> probe = MakeRrGenerator(kind, graph);
  if (!probe.ok()) {
    return probe.status();
  }
  return std::unique_ptr<SampleStore>(
      new SampleStore(graph, kind, streams, options));
}

Status SampleStore::EnsureSets(std::size_t stream, std::uint64_t count) {
  SUBSIM_CHECK(stream < kNumStreams, "stream out of range");
  if (committed_[stream].load(std::memory_order_acquire) >= count) {
    return Status::Ok();
  }
  const WriterMutexLock lock(mu_);
  Stream& s = streams_[stream];
  const std::uint64_t have = s.collection.num_sets();
  if (have >= count) {
    return Status::Ok();
  }
  const std::size_t need = static_cast<std::size_t>(count - have);
  FillRequest request;
  request.kind = kind_;
  request.graph = graph_;
  request.rng = &s.rng;
  request.count = need;
  request.num_threads = options_.num_threads;
  request.obs = options_.obs;
  request.kernel = options_.kernel;
  SUBSIM_RETURN_IF_ERROR(FillCollection(request, &s.collection));
  if (MetricsRegistry* metrics = options_.obs.metrics; metrics != nullptr) {
    metrics->Counter("store.fill_rounds").Increment();
    metrics->Counter("store.sets_generated").Add(need);
    // Recompute bytes inline: ApproxMemoryBytes() takes the shared lock we
    // already hold exclusively.
    std::uint64_t bytes = sizeof(SampleStore);
    for (const Stream& st : streams_) {
      bytes += st.collection.ApproxMemoryBytes();
    }
    metrics->Gauge("store.approx_bytes").Set(static_cast<double>(bytes));
  }
  // Store streams carry no sentinels, so no set may be truncated — the
  // invariant that makes them safe to serve to any non-HIST query.
  SUBSIM_DCHECK(s.collection.num_hit_sentinel() == 0,
                "sentinel-truncated set in a shared sample store");
  committed_[stream].store(s.collection.num_sets(),
                           std::memory_order_release);
  return Status::Ok();
}

std::uint64_t SampleStore::ApproxMemoryBytes() const {
  const ReaderMutexLock lock(mu_);
  std::uint64_t bytes = sizeof(SampleStore);
  for (const Stream& stream : streams_) {
    bytes += stream.collection.ApproxMemoryBytes();
  }
  return bytes;
}

}  // namespace subsim
