#include "subsim/rrset/sample_store.h"

#include <utility>
#include <vector>

#include "subsim/rrset/parallel_fill.h"
#include "subsim/rrset/rr_generator.h"

namespace subsim {

SampleStore::SampleStore(const Graph& graph, GeneratorKind kind,
                         std::array<RngStream, kNumStreams> streams,
                         const Options& options)
    : graph_(&graph),
      kind_(kind),
      num_nodes_(graph.num_nodes()),
      options_(options),
      streams_{Stream(graph.num_nodes(), options.encoding, streams[0]),
               Stream(graph.num_nodes(), options.encoding, streams[1])} {}

Result<std::unique_ptr<SampleStore>> SampleStore::Create(
    const Graph& graph, GeneratorKind kind,
    std::array<RngStream, kNumStreams> streams, const Options& options) {
  // Fills construct their own generators, but probe once here so a graph
  // the kind rejects (e.g. LT weight sums) fails at creation, not on the
  // first EnsureSets.
  Result<std::unique_ptr<RrGenerator>> probe = MakeRrGenerator(kind, graph);
  if (!probe.ok()) {
    return probe.status();
  }
  return std::unique_ptr<SampleStore>(
      new SampleStore(graph, kind, streams, options));
}

Result<std::unique_ptr<SampleStore>> SampleStore::CreateRepaired(
    const Graph& graph, const SampleStore& source,
    std::span<const NodeId> dirty_nodes, const Options& options,
    RepairStats* stats) {
  if (graph.num_nodes() != source.num_nodes_) {
    return Status::InvalidArgument(
        "repair requires an unchanged node set: source store has " +
        std::to_string(source.num_nodes_) + " nodes, new graph has " +
        std::to_string(graph.num_nodes()));
  }
  // Also the regeneration engine below — creation fails here when the kind
  // rejects the mutated graph (e.g. an LT weight sum pushed past 1).
  Result<std::unique_ptr<RrGenerator>> generator =
      MakeRrGenerator(source.kind_, graph);
  if (!generator.ok()) {
    return generator.status();
  }

  // Readers-writer discipline: the shared lock freezes both streams at
  // their committed lengths while letting concurrent queries keep reading
  // the source (it may still be serving the retiring version).
  const ReaderMutexLock source_lock(source.mu_);
  std::array<RngStream, kNumStreams> streams{};
  for (std::size_t s = 0; s < kNumStreams; ++s) {
    const Stream& from = source.streams_[s];
    // The repaired store continues each stream exactly where the source
    // stopped; `next_index == collection.num_sets()` is the stream cursor
    // invariant, re-established here for the new store.
    streams[s] = RngStream{from.rng.base_seed, from.collection.num_sets()};
  }
  // The repaired store inherits the source's arena encoding: kept sets are
  // copied through RrSetView in storage order, which is an identity
  // round-trip only within one encoding (delta storage is sorted, raw
  // storage is discovery-ordered).
  Options repaired_options = options;
  repaired_options.encoding = source.options_.encoding;
  auto repaired = std::unique_ptr<SampleStore>(
      new SampleStore(graph, source.kind_, streams, repaired_options));

  const RrGenStats stats_before = (*generator)->stats();
  RepairStats repair;
  std::vector<NodeId> scratch;
  std::vector<NodeId> decode_scratch;
  std::vector<std::uint8_t> needs_regen;
  const WriterMutexLock repaired_lock(repaired->mu_);
  for (std::size_t s = 0; s < kNumStreams; ++s) {
    const RrCollection& from = source.streams_[s].collection;
    const std::size_t num_sets = from.num_sets();
    // The inverted index turns the mutation frontier into the exact id set
    // to regenerate: a set replays identically unless it visited a node
    // whose in-row changed.
    needs_regen.assign(num_sets, 0);
    for (const NodeId v : dirty_nodes) {
      if (v >= source.num_nodes_) {
        continue;
      }
      for (const RrId id : from.SetsContaining(v)) {
        needs_regen[id] = 1;
      }
    }
    RrCollection& to = repaired->streams_[s].collection;
    const std::uint64_t base_seed = source.streams_[s].rng.base_seed;
    for (std::size_t i = 0; i < num_sets; ++i) {
      if (needs_regen[i]) {
        Rng set_rng = Rng::Substream(base_seed, i);
        const bool hit = (*generator)->Generate(set_rng, &scratch);
        to.Add(scratch, hit);
        ++repair.sets_repaired;
      } else {
        // Bulk-decode the kept set through the view; for raw arenas this
        // is the old zero-copy span, for delta arenas it decodes into the
        // reused scratch and Add re-encodes the (already sorted) members
        // to identical bytes.
        const RrSetView kept = from.View(static_cast<RrId>(i));
        to.Add(kept.Decode(&decode_scratch),
               from.HitSentinel(static_cast<RrId>(i)));
        ++repair.sets_kept;
      }
    }
    SUBSIM_DCHECK(to.num_hit_sentinel() == 0,
                  "sentinel-truncated set in a repaired sample store");
    repaired->committed_[s].store(to.num_sets(), std::memory_order_release);
  }
  FlushRrGenStatsDelta(stats_before, (*generator)->stats(),
                       options.obs.metrics);
  if (stats != nullptr) {
    *stats = repair;
  }
  return repaired;
}

Status SampleStore::EnsureSets(std::size_t stream, std::uint64_t count) {
  SUBSIM_CHECK(stream < kNumStreams, "stream out of range");
  if (committed_[stream].load(std::memory_order_acquire) >= count) {
    return Status::Ok();
  }
  const WriterMutexLock lock(mu_);
  Stream& s = streams_[stream];
  const std::uint64_t have = s.collection.num_sets();
  if (have >= count) {
    return Status::Ok();
  }
  const std::size_t need = static_cast<std::size_t>(count - have);
  FillRequest request;
  request.kind = kind_;
  request.graph = graph_;
  request.rng = &s.rng;
  request.count = need;
  request.num_threads = options_.num_threads;
  request.obs = options_.obs;
  request.kernel = options_.kernel;
  SUBSIM_RETURN_IF_ERROR(FillCollection(request, &s.collection));
  if (MetricsRegistry* metrics = options_.obs.metrics; metrics != nullptr) {
    metrics->Counter("store.fill_rounds").Increment();
    metrics->Counter("store.sets_generated").Add(need);
    // Recompute bytes inline: ApproxMemoryBytes() takes the shared lock we
    // already hold exclusively.
    std::uint64_t bytes = sizeof(SampleStore);
    for (const Stream& st : streams_) {
      bytes += st.collection.ApproxMemoryBytes();
    }
    metrics->Gauge("store.approx_bytes").Set(static_cast<double>(bytes));
  }
  // Store streams carry no sentinels, so no set may be truncated — the
  // invariant that makes them safe to serve to any non-HIST query.
  SUBSIM_DCHECK(s.collection.num_hit_sentinel() == 0,
                "sentinel-truncated set in a shared sample store");
  committed_[stream].store(s.collection.num_sets(),
                           std::memory_order_release);
  return Status::Ok();
}

std::uint64_t SampleStore::ApproxMemoryBytes() const {
  const ReaderMutexLock lock(mu_);
  std::uint64_t bytes = sizeof(SampleStore);
  for (const Stream& stream : streams_) {
    bytes += stream.collection.ApproxMemoryBytes();
  }
  return bytes;
}

}  // namespace subsim
