#ifndef SUBSIM_GRAPH_GRAPH_BUILDER_H_
#define SUBSIM_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "subsim/graph/graph.h"
#include "subsim/graph/types.h"
#include "subsim/util/status.h"

namespace subsim {

/// Options controlling CSR construction.
struct GraphBuildOptions {
  /// Sort each node's in-neighbor list by descending edge weight. Required
  /// by the index-free sorted subset sampler (Section 3.3); harmless
  /// otherwise. Out-lists keep insertion order.
  bool sort_in_edges_by_weight = false;

  /// Drop self-loops (u == v). A self-loop never changes a cascade — the
  /// endpoint is already active when the edge would fire — so this defaults
  /// to true.
  bool remove_self_loops = true;

  /// Merge parallel (u, v) duplicates, keeping the max weight. Off by
  /// default: datasets are usually deduplicated already and detection costs
  /// a sort.
  bool merge_parallel_edges = false;
};

/// Validates and freezes an `EdgeList` into an immutable CSR `Graph`.
///
/// Usage:
///   GraphBuilder builder(num_nodes);
///   builder.AddEdge(u, v, p);
///   Result<Graph> graph = std::move(builder).Build(options);
///
/// or directly from an EdgeList via `BuildGraph(list, options)`.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes) { list_.num_nodes = num_nodes; }
  explicit GraphBuilder(EdgeList list) : list_(std::move(list)) {}

  /// Appends a directed edge; endpoints are validated at Build time.
  void AddEdge(NodeId src, NodeId dst, double weight) {
    list_.edges.push_back(Edge{src, dst, weight});
  }

  /// Appends u->v and v->u with the same weight (undirected datasets).
  void AddUndirectedEdge(NodeId u, NodeId v, double weight) {
    AddEdge(u, v, weight);
    AddEdge(v, u, weight);
  }

  std::size_t num_pending_edges() const { return list_.edges.size(); }

  /// Consumes the builder and produces the graph. Fails with
  /// InvalidArgument if an endpoint is out of range or a weight is outside
  /// [0, 1] / non-finite.
  Result<Graph> Build(const GraphBuildOptions& options = {}) &&;

 private:
  EdgeList list_;
};

/// Convenience wrapper: builds a graph directly from an edge list.
Result<Graph> BuildGraph(EdgeList list, const GraphBuildOptions& options = {});

}  // namespace subsim

#endif  // SUBSIM_GRAPH_GRAPH_BUILDER_H_
