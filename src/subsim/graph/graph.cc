#include "subsim/graph/graph.h"

namespace subsim {

EdgeList Graph::ToEdgeList() const {
  EdgeList list;
  list.num_nodes = num_nodes_;
  list.edges.reserve(num_edges_);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    const auto targets = OutNeighbors(u);
    const auto weights = OutWeights(u);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      list.edges.push_back(Edge{u, targets[i], weights[i]});
    }
  }
  return list;
}

}  // namespace subsim
