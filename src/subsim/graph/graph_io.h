#ifndef SUBSIM_GRAPH_GRAPH_IO_H_
#define SUBSIM_GRAPH_GRAPH_IO_H_

#include <istream>
#include <string>

#include "subsim/graph/types.h"
#include "subsim/util/status.h"

namespace subsim {

/// Options for text edge-list parsing (SNAP-style files).
struct EdgeListReadOptions {
  /// Treat each line "u v [w]" as two directed edges u->v and v->u.
  bool undirected = false;
  /// If a third column is present, read it as the edge weight; otherwise
  /// weights default to 0 (assign a WeightModel afterwards).
  bool read_weights = true;
  /// Lines starting with '#' or '%' are always skipped.
};

/// Parses a whitespace-separated edge list. Node ids may be arbitrary
/// non-negative integers; they are kept as-is, and `num_nodes` becomes
/// max(id) + 1. Fails with IoError / InvalidArgument on unreadable files or
/// malformed lines.
Result<EdgeList> ReadEdgeListText(const std::string& path,
                                  const EdgeListReadOptions& options = {});

/// Stream-level core of ReadEdgeListText. `origin` labels error messages
/// (a path for files, "<memory>" for in-memory buffers). Parsing from a
/// stream keeps the untrusted-input surface testable without touching the
/// filesystem — the fuzz harnesses drive this directly.
Result<EdgeList> ParseEdgeListText(std::istream& in,
                                   const EdgeListReadOptions& options = {},
                                   const std::string& origin = "<stream>");

/// Writes "src dst weight" lines. Inverse of ReadEdgeListText with
/// read_weights = true.
Status WriteEdgeListText(const EdgeList& list, const std::string& path);

/// Binary snapshot of an edge list (magic + version + counts + packed
/// edges). Roughly 10x faster to load than text for big graphs.
Status WriteEdgeListBinary(const EdgeList& list, const std::string& path);
Result<EdgeList> ReadEdgeListBinary(const std::string& path);

/// Stream-level core of ReadEdgeListBinary; the stream must support
/// seeking (the header is validated against the total size before any
/// allocation). Same fuzzing rationale as ParseEdgeListText.
Result<EdgeList> ParseEdgeListBinary(std::istream& in,
                                     const std::string& origin = "<stream>");

}  // namespace subsim

#endif  // SUBSIM_GRAPH_GRAPH_IO_H_
