#ifndef SUBSIM_GRAPH_GENERATORS_H_
#define SUBSIM_GRAPH_GENERATORS_H_

#include <cstdint>

#include "subsim/graph/types.h"
#include "subsim/util/status.h"

namespace subsim {

/// Synthetic graph generators.
///
/// The paper evaluates on SNAP/KONECT social networks that are not shipped
/// with this repository; these generators produce structurally comparable
/// stand-ins (heavy-tailed degree distributions, matched average degree) at
/// laptop scale. All generators emit edges with weight 0 — apply a
/// `WeightModel` afterwards. All are deterministic given the seed.

/// Erdős–Rényi G(n, m): m distinct directed edges drawn uniformly at random
/// (no self-loops). Requires m <= n*(n-1).
Result<EdgeList> GenerateErdosRenyi(NodeId num_nodes, EdgeIndex num_edges,
                                    std::uint64_t seed);

/// Barabási–Albert preferential attachment: nodes arrive one at a time and
/// attach `edges_per_node` out-edges to existing nodes chosen proportionally
/// to (degree + 1). If `undirected` is true, each attachment also adds the
/// reverse edge, yielding the symmetric social-graph shape of Orkut /
/// Friendster. Produces a heavy-tailed in-degree distribution.
Result<EdgeList> GenerateBarabasiAlbert(NodeId num_nodes,
                                        NodeId edges_per_node,
                                        bool undirected, std::uint64_t seed);

/// Directed configuration model with power-law out- and in-degree
/// distributions: degrees ~ Zipf(exponent) truncated at `max_degree`, then
/// out-stubs are matched to in-stubs uniformly at random. Self-loops are
/// dropped; parallel edges kept (they are rare and harmless to IC/LT).
/// The Twitter-style "few huge hubs" shape comes from exponent ~ 2.0.
Result<EdgeList> GeneratePowerLawConfiguration(NodeId num_nodes,
                                               double exponent,
                                               NodeId max_degree,
                                               double target_avg_degree,
                                               std::uint64_t seed);

/// Watts–Strogatz small world: a ring lattice where each node connects to
/// `neighbors_each_side` nodes on each side, each edge rewired with
/// probability `rewire_prob`. Directed (both directions added).
Result<EdgeList> GenerateWattsStrogatz(NodeId num_nodes,
                                       NodeId neighbors_each_side,
                                       double rewire_prob,
                                       std::uint64_t seed);

/// Deterministic shapes used by unit tests and examples.
EdgeList MakePath(NodeId num_nodes);                // 0->1->2->...
EdgeList MakeCycle(NodeId num_nodes);               // ... ->0
EdgeList MakeStar(NodeId num_leaves);               // 0 -> 1..L
EdgeList MakeComplete(NodeId num_nodes);            // all ordered pairs
EdgeList MakeBipartite(NodeId left, NodeId right);  // every left -> right

}  // namespace subsim

#endif  // SUBSIM_GRAPH_GENERATORS_H_
