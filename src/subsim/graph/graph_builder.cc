#include "subsim/graph/graph_builder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace subsim {

namespace {

Status ValidateEdges(const EdgeList& list) {
  const NodeId n = list.num_nodes;
  for (std::size_t i = 0; i < list.edges.size(); ++i) {
    const Edge& e = list.edges[i];
    if (e.src >= n || e.dst >= n) {
      return Status::InvalidArgument(
          "edge " + std::to_string(i) + " endpoint out of range (n=" +
          std::to_string(n) + ", src=" + std::to_string(e.src) +
          ", dst=" + std::to_string(e.dst) + ")");
    }
    if (!std::isfinite(e.weight) || e.weight < 0.0 || e.weight > 1.0) {
      return Status::InvalidArgument(
          "edge " + std::to_string(i) +
          " weight must be a finite probability in [0,1], got " +
          std::to_string(e.weight));
    }
  }
  return Status::Ok();
}

}  // namespace

Result<Graph> GraphBuilder::Build(const GraphBuildOptions& options) && {
  SUBSIM_RETURN_IF_ERROR(ValidateEdges(list_));

  std::vector<Edge>& edges = list_.edges;
  const NodeId n = list_.num_nodes;

  if (options.remove_self_loops) {
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [](const Edge& e) { return e.src == e.dst; }),
                edges.end());
  }

  if (options.merge_parallel_edges) {
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      if (a.src != b.src) return a.src < b.src;
      if (a.dst != b.dst) return a.dst < b.dst;
      return a.weight > b.weight;  // keep the max-weight copy first
    });
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const Edge& a, const Edge& b) {
                              return a.src == b.src && a.dst == b.dst;
                            }),
                edges.end());
  }

  Graph g;
  g.num_nodes_ = n;
  g.num_edges_ = edges.size();
  g.in_sorted_by_weight_ = options.sort_in_edges_by_weight;

  // Out-CSR via counting sort on src.
  g.out_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges) {
    ++g.out_offsets_[e.src + 1];
  }
  for (NodeId u = 0; u < n; ++u) {
    g.out_offsets_[u + 1] += g.out_offsets_[u];
  }
  g.out_targets_.resize(edges.size());
  g.out_weights_.resize(edges.size());
  {
    std::vector<EdgeIndex> cursor(g.out_offsets_.begin(),
                                  g.out_offsets_.end() - 1);
    for (const Edge& e : edges) {
      const EdgeIndex at = cursor[e.src]++;
      g.out_targets_[at] = e.dst;
      g.out_weights_[at] = e.weight;
    }
  }

  // In-CSR via counting sort on dst.
  g.in_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges) {
    ++g.in_offsets_[e.dst + 1];
  }
  for (NodeId v = 0; v < n; ++v) {
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  g.in_sources_.resize(edges.size());
  g.in_weights_.resize(edges.size());
  {
    std::vector<EdgeIndex> cursor(g.in_offsets_.begin(),
                                  g.in_offsets_.end() - 1);
    for (const Edge& e : edges) {
      const EdgeIndex at = cursor[e.dst]++;
      g.in_sources_[at] = e.src;
      g.in_weights_[at] = e.weight;
    }
  }

  if (options.sort_in_edges_by_weight) {
    // Sort each in-list by descending weight (stable on sources for
    // reproducibility).
    std::vector<std::pair<double, NodeId>> scratch;
    for (NodeId v = 0; v < n; ++v) {
      const EdgeIndex begin = g.in_offsets_[v];
      const EdgeIndex end = g.in_offsets_[v + 1];
      scratch.clear();
      for (EdgeIndex i = begin; i < end; ++i) {
        scratch.emplace_back(g.in_weights_[i], g.in_sources_[i]);
      }
      std::sort(scratch.begin(), scratch.end(), [](const auto& a,
                                                   const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
      });
      for (std::size_t i = 0; i < scratch.size(); ++i) {
        g.in_weights_[begin + i] = scratch[i].first;
        g.in_sources_[begin + i] = scratch[i].second;
      }
    }
  }

  // Per-node derived data.
  g.in_weight_sums_.assign(n, 0.0);
  g.uniform_in_weights_.assign(n, 1);
  g.in_row_meta_.assign(n, InRowMeta{});
  // InRowMeta::begin is 32-bit so four descriptors pack per cache line;
  // the paper's largest dataset is ~1.5B edges, far below the limit.
  SUBSIM_CHECK(g.num_edges_ < EdgeIndex{0xffffffffu},
               "graphs with 2^32-1 or more edges are not supported");
  for (NodeId v = 0; v < n; ++v) {
    const auto weights = g.InWeights(v);
    double sum = 0.0;
    bool uniform = true;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      sum += weights[i];
      if (weights[i] != weights[0]) {
        uniform = false;
      }
    }
    g.in_weight_sums_[v] = sum;
    g.uniform_in_weights_[v] = uniform ? 1 : 0;
    // The packed expansion descriptor: CSR position plus the shared
    // weight, hoisted out of the O(m) weights array (one cache line per
    // node instead of three on the batched kernels' hot path).
    InRowMeta& meta = g.in_row_meta_[v];
    meta.begin = static_cast<std::uint32_t>(g.in_offsets_[v]);
    meta.degree = static_cast<std::uint32_t>(weights.size());
    meta.uniform_weight =
        uniform ? (weights.empty() ? 0.0 : weights[0])
                : std::numeric_limits<double>::quiet_NaN();
  }

  return g;
}

Result<Graph> BuildGraph(EdgeList list, const GraphBuildOptions& options) {
  return GraphBuilder(std::move(list)).Build(options);
}

}  // namespace subsim
