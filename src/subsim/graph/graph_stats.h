#ifndef SUBSIM_GRAPH_GRAPH_STATS_H_
#define SUBSIM_GRAPH_GRAPH_STATS_H_

#include <string>

#include "subsim/graph/graph.h"

namespace subsim {

/// Summary statistics of a built graph; used by the Table 2 bench and by
/// tests that assert on generator shapes.
struct GraphStats {
  NodeId num_nodes = 0;
  EdgeIndex num_edges = 0;
  double average_degree = 0.0;
  NodeId max_in_degree = 0;
  NodeId max_out_degree = 0;
  /// Fraction of nodes with in-degree 0.
  double isolated_in_fraction = 0.0;
  /// Average and max of per-node total incoming weight (the paper's
  /// theta(d_in) quantity).
  double avg_in_weight_sum = 0.0;
  double max_in_weight_sum = 0.0;

  std::string ToString() const;
};

GraphStats ComputeGraphStats(const Graph& graph);

}  // namespace subsim

#endif  // SUBSIM_GRAPH_GRAPH_STATS_H_
