#include "subsim/graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "subsim/random/rng.h"
#include "subsim/util/check.h"

namespace subsim {

namespace {

/// Packs (src, dst) for duplicate detection.
inline std::uint64_t PackEdge(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}

}  // namespace

Result<EdgeList> GenerateErdosRenyi(NodeId num_nodes, EdgeIndex num_edges,
                                    std::uint64_t seed) {
  if (num_nodes < 2) {
    return Status::InvalidArgument("ErdosRenyi requires >= 2 nodes");
  }
  const double max_edges = static_cast<double>(num_nodes) *
                           (static_cast<double>(num_nodes) - 1.0);
  if (static_cast<double>(num_edges) > max_edges) {
    return Status::InvalidArgument("too many edges for simple digraph");
  }
  if (static_cast<double>(num_edges) > 0.5 * max_edges) {
    return Status::InvalidArgument(
        "rejection sampling needs m <= 0.5 * n * (n-1); use MakeComplete for "
        "dense graphs");
  }

  EdgeList list;
  list.num_nodes = num_nodes;
  list.edges.reserve(num_edges);
  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(num_edges * 2);
  while (list.edges.size() < num_edges) {
    const NodeId src = static_cast<NodeId>(rng.UniformInt(num_nodes));
    const NodeId dst = static_cast<NodeId>(rng.UniformInt(num_nodes));
    if (src == dst) {
      continue;
    }
    if (seen.insert(PackEdge(src, dst)).second) {
      list.edges.push_back(Edge{src, dst, 0.0});
    }
  }
  return list;
}

Result<EdgeList> GenerateBarabasiAlbert(NodeId num_nodes,
                                        NodeId edges_per_node,
                                        bool undirected, std::uint64_t seed) {
  if (edges_per_node == 0) {
    return Status::InvalidArgument("edges_per_node must be >= 1");
  }
  if (num_nodes <= edges_per_node) {
    return Status::InvalidArgument("need num_nodes > edges_per_node");
  }

  EdgeList list;
  list.num_nodes = num_nodes;
  list.edges.reserve(static_cast<std::size_t>(num_nodes) * edges_per_node *
                     (undirected ? 2 : 1));
  Rng rng(seed);

  // `attachment` holds one entry per degree unit plus one per node
  // (the +1 smoothing), so uniform picks from it realize preferential
  // attachment. Classic Batagelj–Brandes trick.
  std::vector<NodeId> attachment;
  attachment.reserve(static_cast<std::size_t>(num_nodes) *
                     (2 * edges_per_node + 1));

  // Seed clique over the first edges_per_node + 1 nodes.
  const NodeId seed_size = edges_per_node + 1;
  for (NodeId u = 0; u < seed_size; ++u) {
    for (NodeId v = 0; v < seed_size; ++v) {
      if (u == v) {
        continue;
      }
      list.edges.push_back(Edge{u, v, 0.0});
    }
    attachment.insert(attachment.end(), seed_size, u);
  }

  // Insertion-ordered (RNG draw order), not an unordered_set: the emission
  // order below feeds `attachment` and therefore every later draw, so it
  // must be a pure function of the seed — hash-table iteration order is
  // implementation-defined and would make the same seed produce different
  // graphs on different standard libraries. edges_per_node is small, so
  // the linear dedup scan is cheaper than hashing anyway.
  std::vector<NodeId> chosen;
  chosen.reserve(edges_per_node);
  for (NodeId u = seed_size; u < num_nodes; ++u) {
    chosen.clear();
    while (chosen.size() < edges_per_node) {
      const NodeId target = attachment[rng.UniformInt(attachment.size())];
      if (target == u ||
          std::find(chosen.begin(), chosen.end(), target) != chosen.end()) {
        continue;
      }
      chosen.push_back(target);
    }
    for (NodeId target : chosen) {
      list.edges.push_back(Edge{u, target, 0.0});
      if (undirected) {
        list.edges.push_back(Edge{target, u, 0.0});
      }
      attachment.push_back(target);
      attachment.push_back(u);
    }
    attachment.push_back(u);  // +1 smoothing entry for the new node
  }
  return list;
}

Result<EdgeList> GeneratePowerLawConfiguration(NodeId num_nodes,
                                               double exponent,
                                               NodeId max_degree,
                                               double target_avg_degree,
                                               std::uint64_t seed) {
  if (num_nodes < 2 || max_degree < 1) {
    return Status::InvalidArgument("need >= 2 nodes and max_degree >= 1");
  }
  if (exponent <= 1.0) {
    return Status::InvalidArgument("power-law exponent must be > 1");
  }
  if (target_avg_degree <= 0.0 ||
      target_avg_degree > static_cast<double>(max_degree)) {
    return Status::InvalidArgument("target_avg_degree out of range");
  }

  Rng rng(seed);
  max_degree = std::min<NodeId>(max_degree, num_nodes - 1);

  // Zipf pmf over degrees 1..max_degree: Pr[d] ~ d^-exponent; build a CDF
  // for inverse-transform sampling.
  std::vector<double> cdf(max_degree);
  double acc = 0.0;
  for (NodeId d = 1; d <= max_degree; ++d) {
    acc += std::pow(static_cast<double>(d), -exponent);
    cdf[d - 1] = acc;
  }
  for (double& c : cdf) {
    c /= acc;
  }
  // Mean of the raw law; degrees are later thinned/boosted towards the
  // requested average by scaling the per-node draw count.
  double mean = 0.0;
  double prev = 0.0;
  for (NodeId d = 1; d <= max_degree; ++d) {
    mean += d * (cdf[d - 1] - prev);
    prev = cdf[d - 1];
  }
  const double boost = target_avg_degree / mean;

  // One popularity draw per node feeds both degree directions, so hubs are
  // hubs on both sides — the in/out correlation real follower graphs have.
  // (With independent draws the nodes most likely to appear in RR sets
  // would rarely be the expensive high-in-degree ones, which would erase
  // the very asymmetry the SUBSIM experiments measure.)
  auto stochastic_round = [&](double scaled) -> EdgeIndex {
    const EdgeIndex whole = static_cast<EdgeIndex>(scaled);
    return whole + (rng.NextDouble() < (scaled - whole) ? 1 : 0);
  };

  std::vector<NodeId> out_stubs;
  std::vector<NodeId> in_stubs;
  for (NodeId v = 0; v < num_nodes; ++v) {
    const double u = rng.NextDouble();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const NodeId base =
        static_cast<NodeId>(std::distance(cdf.begin(), it)) + 1;
    const double scaled = base * boost;
    const EdgeIndex od = stochastic_round(scaled);
    const EdgeIndex id = stochastic_round(scaled);
    out_stubs.insert(out_stubs.end(), od, v);
    in_stubs.insert(in_stubs.end(), id, v);
  }
  // Equalize stub counts by trimming the longer list at random.
  while (out_stubs.size() > in_stubs.size()) {
    const std::size_t i = rng.UniformInt(out_stubs.size());
    out_stubs[i] = out_stubs.back();
    out_stubs.pop_back();
  }
  while (in_stubs.size() > out_stubs.size()) {
    const std::size_t i = rng.UniformInt(in_stubs.size());
    in_stubs[i] = in_stubs.back();
    in_stubs.pop_back();
  }

  // Shuffle in-stubs (Fisher–Yates) and match positionally.
  for (std::size_t i = in_stubs.size(); i > 1; --i) {
    std::swap(in_stubs[i - 1], in_stubs[rng.UniformInt(i)]);
  }

  EdgeList list;
  list.num_nodes = num_nodes;
  list.edges.reserve(out_stubs.size());
  for (std::size_t i = 0; i < out_stubs.size(); ++i) {
    if (out_stubs[i] == in_stubs[i]) {
      continue;  // drop self-loops
    }
    list.edges.push_back(Edge{out_stubs[i], in_stubs[i], 0.0});
  }
  return list;
}

Result<EdgeList> GenerateWattsStrogatz(NodeId num_nodes,
                                       NodeId neighbors_each_side,
                                       double rewire_prob,
                                       std::uint64_t seed) {
  if (num_nodes < 3 || neighbors_each_side < 1) {
    return Status::InvalidArgument("need >= 3 nodes, >= 1 neighbor per side");
  }
  if (2 * static_cast<EdgeIndex>(neighbors_each_side) >= num_nodes) {
    return Status::InvalidArgument("neighborhood too large for ring");
  }
  if (rewire_prob < 0.0 || rewire_prob > 1.0) {
    return Status::InvalidArgument("rewire_prob must be in [0,1]");
  }

  Rng rng(seed);
  EdgeList list;
  list.num_nodes = num_nodes;
  list.edges.reserve(static_cast<std::size_t>(num_nodes) *
                     neighbors_each_side * 2);
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (NodeId j = 1; j <= neighbors_each_side; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % num_nodes);
      if (rng.NextDouble() < rewire_prob) {
        do {
          v = static_cast<NodeId>(rng.UniformInt(num_nodes));
        } while (v == u);
      }
      list.edges.push_back(Edge{u, v, 0.0});
      list.edges.push_back(Edge{v, u, 0.0});
    }
  }
  return list;
}

EdgeList MakePath(NodeId num_nodes) {
  SUBSIM_CHECK(num_nodes >= 1, "path needs >= 1 node");
  EdgeList list;
  list.num_nodes = num_nodes;
  for (NodeId u = 0; u + 1 < num_nodes; ++u) {
    list.edges.push_back(Edge{u, static_cast<NodeId>(u + 1), 0.0});
  }
  return list;
}

EdgeList MakeCycle(NodeId num_nodes) {
  SUBSIM_CHECK(num_nodes >= 2, "cycle needs >= 2 nodes");
  EdgeList list = MakePath(num_nodes);
  list.edges.push_back(Edge{static_cast<NodeId>(num_nodes - 1), 0, 0.0});
  return list;
}

EdgeList MakeStar(NodeId num_leaves) {
  EdgeList list;
  list.num_nodes = num_leaves + 1;
  for (NodeId leaf = 1; leaf <= num_leaves; ++leaf) {
    list.edges.push_back(Edge{0, leaf, 0.0});
  }
  return list;
}

EdgeList MakeComplete(NodeId num_nodes) {
  EdgeList list;
  list.num_nodes = num_nodes;
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (NodeId v = 0; v < num_nodes; ++v) {
      if (u != v) {
        list.edges.push_back(Edge{u, v, 0.0});
      }
    }
  }
  return list;
}

EdgeList MakeBipartite(NodeId left, NodeId right) {
  EdgeList list;
  list.num_nodes = left + right;
  for (NodeId u = 0; u < left; ++u) {
    for (NodeId v = 0; v < right; ++v) {
      list.edges.push_back(Edge{u, static_cast<NodeId>(left + v), 0.0});
    }
  }
  return list;
}

}  // namespace subsim
