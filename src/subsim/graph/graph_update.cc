#include "subsim/graph/graph_update.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "subsim/util/string_util.h"

namespace subsim {

namespace {

constexpr NodeId kRemovedEdge = std::numeric_limits<NodeId>::max();

std::uint64_t EdgeKey(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}

Status OpError(std::size_t index, const EdgeOp& op, const std::string& why) {
  return Status::InvalidArgument(
      "op " + std::to_string(index) + " (" + EdgeOpKindName(op.kind) + " " +
      std::to_string(op.src) + "->" + std::to_string(op.dst) + "): " + why);
}

}  // namespace

const char* EdgeOpKindName(EdgeOpKind kind) {
  switch (kind) {
    case EdgeOpKind::kInsert:
      return "insert";
    case EdgeOpKind::kDelete:
      return "delete";
    case EdgeOpKind::kSetWeight:
      return "weight";
  }
  return "unknown";
}

Result<EdgeUpdateResult> ApplyEdgeUpdates(const Graph& graph,
                                          const UpdateBatch& batch) {
  if (batch.ops.empty()) {
    return Status::InvalidArgument("update batch has no ops");
  }
  if (batch.ops.size() > kMaxUpdateOps) {
    return Status::InvalidArgument(
        "update batch has " + std::to_string(batch.ops.size()) +
        " ops, limit is " + std::to_string(kMaxUpdateOps));
  }
  const NodeId n = graph.num_nodes();
  EdgeList list = graph.ToEdgeList();

  // (src, dst) -> index into list.edges for the live copy of that edge.
  // Parallel edges can exist in graphs built without merging; ops address
  // the first live copy, which matches the builder's stable CSR order.
  std::unordered_map<std::uint64_t, std::size_t> live;
  live.reserve(list.edges.size());
  for (std::size_t i = 0; i < list.edges.size(); ++i) {
    const Edge& e = list.edges[i];
    live.emplace(EdgeKey(e.src, e.dst), i);
  }

  std::vector<NodeId> dirty;
  dirty.reserve(batch.ops.size());
  for (std::size_t i = 0; i < batch.ops.size(); ++i) {
    const EdgeOp& op = batch.ops[i];
    if (op.src >= n || op.dst >= n) {
      return OpError(i, op,
                     "endpoint out of range (graph has " + std::to_string(n) +
                         " nodes; the node set is fixed across updates)");
    }
    const bool needs_weight = op.kind != EdgeOpKind::kDelete;
    if (needs_weight &&
        (!std::isfinite(op.weight) || op.weight < 0.0 || op.weight > 1.0)) {
      return OpError(i, op, "weight must be a finite probability in [0,1]");
    }
    const std::uint64_t key = EdgeKey(op.src, op.dst);
    const auto it = live.find(key);
    switch (op.kind) {
      case EdgeOpKind::kInsert: {
        if (op.src == op.dst) {
          return OpError(i, op, "self-loops are not allowed");
        }
        if (it != live.end()) {
          return OpError(i, op, "edge already exists");
        }
        live.emplace(key, list.edges.size());
        list.edges.push_back(Edge{op.src, op.dst, op.weight});
        break;
      }
      case EdgeOpKind::kDelete: {
        if (it == live.end()) {
          return OpError(i, op, "no such edge");
        }
        list.edges[it->second].src = kRemovedEdge;
        live.erase(it);
        break;
      }
      case EdgeOpKind::kSetWeight: {
        if (it == live.end()) {
          return OpError(i, op, "no such edge");
        }
        list.edges[it->second].weight = op.weight;
        break;
      }
    }
    dirty.push_back(op.dst);
  }

  list.edges.erase(std::remove_if(list.edges.begin(), list.edges.end(),
                                  [](const Edge& e) {
                                    return e.src == kRemovedEdge;
                                  }),
                   list.edges.end());

  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());

  GraphBuildOptions options;
  options.sort_in_edges_by_weight = graph.in_sorted_by_weight();
  Result<Graph> rebuilt = BuildGraph(std::move(list), options);
  if (!rebuilt.ok()) {
    return rebuilt.status();
  }
  EdgeUpdateResult result;
  result.graph = std::move(*rebuilt);
  result.dirty_nodes = std::move(dirty);
  return result;
}

Result<GraphUpdateRequest> ParseGraphUpdateRequest(std::string_view text) {
  GraphUpdateRequest request;
  bool saw_header = false;
  std::size_t lineno = 0;
  while (!text.empty()) {
    ++lineno;
    const std::size_t eol = text.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? text : text.substr(0, eol);
    text = eol == std::string_view::npos ? std::string_view()
                                         : text.substr(eol + 1);
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = StripWhitespace(line);
    if (line.empty()) {
      continue;
    }
    const std::vector<std::string_view> tokens = SplitAndTrim(line, " \t");
    const auto error = [&](const std::string& why) {
      return Status::InvalidArgument("line " + std::to_string(lineno) + ": " +
                                     why);
    };

    if (!saw_header) {
      // Header: `graph=NAME [expect_version=V]`.
      for (const std::string_view token : tokens) {
        const std::size_t eq = token.find('=');
        if (eq == std::string_view::npos) {
          return error("expected key=value header, got '" +
                       std::string(token) + "'");
        }
        const std::string_view header_key = token.substr(0, eq);
        const std::string_view value = token.substr(eq + 1);
        if (header_key == "graph") {
          if (value.empty()) {
            return error("graph name must be non-empty");
          }
          request.graph = std::string(value);
        } else if (header_key == "expect_version") {
          if (!ParseUint64(value, &request.batch.expect_version)) {
            return error("bad expect_version '" + std::string(value) + "'");
          }
        } else {
          return error("unknown header key '" + std::string(header_key) +
                       "'");
        }
      }
      if (request.graph.empty()) {
        return error("header must name a graph (graph=NAME)");
      }
      saw_header = true;
      continue;
    }

    // Op line: `insert SRC DST WEIGHT` | `delete SRC DST` |
    // `weight SRC DST WEIGHT`.
    EdgeOp op;
    std::size_t expected_tokens = 4;
    if (tokens[0] == "insert") {
      op.kind = EdgeOpKind::kInsert;
    } else if (tokens[0] == "delete") {
      op.kind = EdgeOpKind::kDelete;
      expected_tokens = 3;
    } else if (tokens[0] == "weight") {
      op.kind = EdgeOpKind::kSetWeight;
    } else {
      return error("unknown op '" + std::string(tokens[0]) +
                   "' (want insert/delete/weight)");
    }
    if (tokens.size() != expected_tokens) {
      return error(std::string(tokens[0]) + " takes " +
                   std::to_string(expected_tokens - 1) + " arguments");
    }
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    if (!ParseUint64(tokens[1], &src) ||
        src > std::numeric_limits<NodeId>::max()) {
      return error("bad src node id '" + std::string(tokens[1]) + "'");
    }
    if (!ParseUint64(tokens[2], &dst) ||
        dst > std::numeric_limits<NodeId>::max()) {
      return error("bad dst node id '" + std::string(tokens[2]) + "'");
    }
    op.src = static_cast<NodeId>(src);
    op.dst = static_cast<NodeId>(dst);
    if (expected_tokens == 4) {
      if (!ParseDouble(tokens[3], &op.weight) || !std::isfinite(op.weight) ||
          op.weight < 0.0 || op.weight > 1.0) {
        return error("bad weight '" + std::string(tokens[3]) +
                     "' (want a probability in [0,1])");
      }
    }
    if (request.batch.ops.size() >= kMaxUpdateOps) {
      return error("too many ops (limit " + std::to_string(kMaxUpdateOps) +
                   ")");
    }
    request.batch.ops.push_back(op);
  }
  if (!saw_header) {
    return Status::InvalidArgument("empty update request");
  }
  if (request.batch.ops.empty()) {
    return Status::InvalidArgument("update request has no ops");
  }
  return request;
}

}  // namespace subsim
