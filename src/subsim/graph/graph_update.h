#ifndef SUBSIM_GRAPH_GRAPH_UPDATE_H_
#define SUBSIM_GRAPH_GRAPH_UPDATE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "subsim/graph/graph.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/types.h"
#include "subsim/util/status.h"

namespace subsim {

/// One edge mutation in an update batch. `weight` is meaningful for
/// `kInsert` and `kSetWeight` (a finite probability in [0,1]) and ignored
/// for `kDelete`.
enum class EdgeOpKind : std::uint8_t {
  kInsert,
  kDelete,
  kSetWeight,
};

const char* EdgeOpKindName(EdgeOpKind kind);

struct EdgeOp {
  EdgeOpKind kind = EdgeOpKind::kInsert;
  NodeId src = 0;
  NodeId dst = 0;
  double weight = 0.0;
};

/// An ordered batch of edge mutations applied atomically: either every op
/// applies (producing one new snapshot version) or the whole batch is
/// rejected. `expect_version` is optimistic-concurrency guard material for
/// the registry layer: 0 means unconditional, any other value requires the
/// named graph's current version to match (`kFailedPrecondition`
/// otherwise). The node set is immutable across updates — RR roots are
/// drawn as `UniformInt(num_nodes)`, so changing `n` would silently shift
/// every substream; ops referencing nodes `>= num_nodes` are rejected.
struct UpdateBatch {
  std::uint64_t expect_version = 0;
  std::vector<EdgeOp> ops;
};

/// Result of applying a batch: the rebuilt immutable graph plus the sorted,
/// deduplicated list of nodes whose *in-adjacency row* changed. RR-set
/// generation traverses edges in reverse and only ever reads the in-rows of
/// nodes it visits, so an existing RR set replays bit-identically on the
/// new graph unless it contains one of these nodes — this list is exactly
/// the invalidation frontier the incremental store repair needs.
struct EdgeUpdateResult {
  Graph graph;
  std::vector<NodeId> dirty_nodes;
};

/// Applies `batch.ops` in order to an edge-list copy of `graph` and builds
/// the successor snapshot. Fails (`kInvalidArgument`) without side effects
/// when any op is invalid: endpoint out of range, self-loop insert, insert
/// of an existing edge, delete/weight-change of a missing edge, or a
/// non-probability weight. `expect_version` is NOT checked here — version
/// arbitration belongs to the registry, which owns the version counter.
Result<EdgeUpdateResult> ApplyEdgeUpdates(const Graph& graph,
                                          const UpdateBatch& batch);

/// A parsed update request: which registry name to mutate plus the batch.
struct GraphUpdateRequest {
  std::string graph;
  UpdateBatch batch;
};

/// Hard cap on ops per parsed batch; guards the parser (fuzzed) and the
/// HTTP route against unbounded allocation.
inline constexpr std::size_t kMaxUpdateOps = std::size_t{1} << 20;

/// Parses the text wire format used by `POST /v1/update_graph`, the CLI
/// `update` subcommand, and batch files:
///
///   graph=NAME [expect_version=V]     # header, first non-comment line
///   insert SRC DST WEIGHT
///   delete SRC DST
///   weight SRC DST WEIGHT
///
/// Blank lines and `#` comments are ignored. At least one op is required.
/// Structural validation only — endpoint range and edge existence are
/// checked against an actual graph by `ApplyEdgeUpdates`.
Result<GraphUpdateRequest> ParseGraphUpdateRequest(std::string_view text);

}  // namespace subsim

#endif  // SUBSIM_GRAPH_GRAPH_UPDATE_H_
