#include "subsim/graph/weight_models.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "subsim/random/rng.h"

namespace subsim {

namespace {

std::vector<NodeId> ComputeInDegrees(const EdgeList& list) {
  std::vector<NodeId> in_degree(list.num_nodes, 0);
  for (const Edge& e : list.edges) {
    ++in_degree[e.dst];
  }
  return in_degree;
}

void AssignWeightedCascade(EdgeList* list) {
  const std::vector<NodeId> in_degree = ComputeInDegrees(*list);
  for (Edge& e : list->edges) {
    e.weight = 1.0 / static_cast<double>(in_degree[e.dst]);
  }
}

void AssignUniform(double p, EdgeList* list) {
  for (Edge& e : list->edges) {
    e.weight = p;
  }
}

void AssignWcVariant(double theta, EdgeList* list) {
  const std::vector<NodeId> in_degree = ComputeInDegrees(*list);
  for (Edge& e : list->edges) {
    e.weight = std::min(1.0, theta / static_cast<double>(in_degree[e.dst]));
  }
}

/// Draws a raw positive weight per edge with `draw`, then rescales each
/// node's incoming weights to sum to 1 (the paper's skewed-distribution
/// protocol). Nodes whose raw incoming sum is 0 keep zero weights.
template <typename DrawFn>
void AssignNormalizedRandom(EdgeList* list, DrawFn draw) {
  for (Edge& e : list->edges) {
    e.weight = draw();
  }
  std::vector<double> in_sums(list->num_nodes, 0.0);
  for (const Edge& e : list->edges) {
    in_sums[e.dst] += e.weight;
  }
  for (Edge& e : list->edges) {
    const double sum = in_sums[e.dst];
    e.weight = sum > 0.0 ? e.weight / sum : 0.0;
  }
}

void AssignExponential(double lambda, std::uint64_t seed, EdgeList* list) {
  Rng rng(seed);
  AssignNormalizedRandom(list, [&]() {
    // Inverse-CDF sampling: X = -ln(U) / lambda.
    return -std::log(rng.NextDoubleOpen()) / lambda;
  });
}

void AssignWeibull(double param_max, std::uint64_t seed, EdgeList* list) {
  Rng rng(seed);
  AssignNormalizedRandom(list, [&]() {
    // Per-edge shape a and scale b from Uniform(0, param_max];
    // X = b * (-ln U)^{1/a}. A shape near 0 raises the exponent 1/a into
    // the thousands, so compute in log space and clamp: one astronomically
    // heavy draw would swallow its node's entire normalized weight anyway.
    const double a = std::max(1e-3, rng.NextDouble() * param_max);
    const double b = rng.NextDoubleOpen() * param_max;
    const double log_x = std::log(b) + std::log(-std::log(rng.NextDoubleOpen())) / a;
    return std::exp(std::min(log_x, 300.0));
  });
}

void AssignTrivalency(std::uint64_t seed, EdgeList* list) {
  static constexpr double kLevels[3] = {0.1, 0.01, 0.001};
  Rng rng(seed);
  for (Edge& e : list->edges) {
    e.weight = kLevels[rng.UniformInt(3)];
  }
}

}  // namespace

Status AssignWeights(WeightModel model, const WeightModelParams& params,
                     EdgeList* list) {
  switch (model) {
    case WeightModel::kWeightedCascade:
    case WeightModel::kLinearThreshold:
      AssignWeightedCascade(list);
      return Status::Ok();
    case WeightModel::kUniformIc:
      if (params.uniform_p < 0.0 || params.uniform_p > 1.0) {
        return Status::InvalidArgument("uniform_p must be in [0,1]");
      }
      AssignUniform(params.uniform_p, list);
      return Status::Ok();
    case WeightModel::kWcVariant:
      if (params.wc_variant_theta < 0.0) {
        return Status::InvalidArgument("wc_variant_theta must be >= 0");
      }
      AssignWcVariant(params.wc_variant_theta, list);
      return Status::Ok();
    case WeightModel::kExponential:
      if (params.exponential_lambda <= 0.0) {
        return Status::InvalidArgument("exponential_lambda must be > 0");
      }
      AssignExponential(params.exponential_lambda, params.seed, list);
      return Status::Ok();
    case WeightModel::kWeibull:
      if (params.weibull_param_max <= 0.0) {
        return Status::InvalidArgument("weibull_param_max must be > 0");
      }
      AssignWeibull(params.weibull_param_max, params.seed, list);
      return Status::Ok();
    case WeightModel::kTrivalency:
      AssignTrivalency(params.seed, list);
      return Status::Ok();
  }
  return Status::InvalidArgument("unknown weight model");
}

Result<WeightModel> ParseWeightModel(const std::string& name) {
  if (name == "wc") return WeightModel::kWeightedCascade;
  if (name == "uniform") return WeightModel::kUniformIc;
  if (name == "wc-variant") return WeightModel::kWcVariant;
  if (name == "exponential") return WeightModel::kExponential;
  if (name == "weibull") return WeightModel::kWeibull;
  if (name == "trivalency") return WeightModel::kTrivalency;
  if (name == "lt") return WeightModel::kLinearThreshold;
  return Status::InvalidArgument("unknown weight model: " + name);
}

const char* WeightModelName(WeightModel model) {
  switch (model) {
    case WeightModel::kWeightedCascade:
      return "wc";
    case WeightModel::kUniformIc:
      return "uniform";
    case WeightModel::kWcVariant:
      return "wc-variant";
    case WeightModel::kExponential:
      return "exponential";
    case WeightModel::kWeibull:
      return "weibull";
    case WeightModel::kTrivalency:
      return "trivalency";
    case WeightModel::kLinearThreshold:
      return "lt";
  }
  return "?";
}

}  // namespace subsim
