#ifndef SUBSIM_GRAPH_TYPES_H_
#define SUBSIM_GRAPH_TYPES_H_

#include <cstdint>
#include <vector>

namespace subsim {

/// Node identifier: dense indices in [0, n).
using NodeId = std::uint32_t;

/// Edge index / adjacency offset. 64-bit so graphs above 4B edge endpoints
/// would still index correctly (we stay far below that at laptop scale).
using EdgeIndex = std::uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = ~NodeId{0};

/// A weighted directed edge `src -> dst` with propagation probability
/// `weight` in [0, 1].
struct Edge {
  NodeId src = 0;
  NodeId dst = 0;
  double weight = 0.0;
};

/// Raw edge-list form of a graph, the exchange format between generators,
/// weight models, IO, and the `GraphBuilder`.
struct EdgeList {
  NodeId num_nodes = 0;
  std::vector<Edge> edges;
};

}  // namespace subsim

#endif  // SUBSIM_GRAPH_TYPES_H_
