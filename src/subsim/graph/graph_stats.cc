#include "subsim/graph/graph_stats.h"

#include <algorithm>
#include <sstream>

namespace subsim {

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  stats.num_nodes = graph.num_nodes();
  stats.num_edges = graph.num_edges();
  stats.average_degree = graph.average_degree();

  NodeId isolated_in = 0;
  double weight_sum_total = 0.0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    stats.max_in_degree = std::max(stats.max_in_degree, graph.InDegree(v));
    stats.max_out_degree = std::max(stats.max_out_degree, graph.OutDegree(v));
    if (graph.InDegree(v) == 0) {
      ++isolated_in;
    }
    const double ws = graph.InWeightSum(v);
    weight_sum_total += ws;
    stats.max_in_weight_sum = std::max(stats.max_in_weight_sum, ws);
  }
  if (graph.num_nodes() > 0) {
    stats.isolated_in_fraction =
        static_cast<double>(isolated_in) / graph.num_nodes();
    stats.avg_in_weight_sum = weight_sum_total / graph.num_nodes();
  }
  return stats;
}

std::string GraphStats::ToString() const {
  std::ostringstream out;
  out << "n=" << num_nodes << " m=" << num_edges << " avg_deg="
      << average_degree << " max_in=" << max_in_degree
      << " max_out=" << max_out_degree
      << " avg_in_wsum=" << avg_in_weight_sum
      << " max_in_wsum=" << max_in_weight_sum;
  return out.str();
}

}  // namespace subsim
