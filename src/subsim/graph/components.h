#ifndef SUBSIM_GRAPH_COMPONENTS_H_
#define SUBSIM_GRAPH_COMPONENTS_H_

#include <vector>

#include "subsim/graph/graph.h"

namespace subsim {

/// Weakly-connected-component decomposition (direction-blind). Influence
/// cannot cross WCC boundaries, so component structure bounds achievable
/// spread and is part of the dataset characterization (Table 2 bench).
struct ComponentInfo {
  /// component_of[v] in [0, num_components).
  std::vector<NodeId> component_of;
  /// Size of each component, descending (component 0 is the giant one...
  /// component ids are relabeled so that sizes are non-increasing).
  std::vector<NodeId> sizes;

  NodeId num_components() const {
    return static_cast<NodeId>(sizes.size());
  }
  /// Fraction of nodes in the largest component (0 for empty graphs).
  double giant_fraction(NodeId num_nodes) const {
    return num_nodes == 0 || sizes.empty()
               ? 0.0
               : static_cast<double>(sizes.front()) / num_nodes;
  }
};

/// Union-find based WCC computation; O(m alpha(n)).
ComponentInfo ComputeWeakComponents(const Graph& graph);

}  // namespace subsim

#endif  // SUBSIM_GRAPH_COMPONENTS_H_
