#include "subsim/graph/components.h"

#include <algorithm>
#include <numeric>

namespace subsim {

namespace {

/// Path-halving union-find.
class UnionFind {
 public:
  explicit UnionFind(NodeId n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  NodeId Find(NodeId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(NodeId a, NodeId b) {
    const NodeId ra = Find(a);
    const NodeId rb = Find(b);
    if (ra != rb) {
      parent_[std::max(ra, rb)] = std::min(ra, rb);
    }
  }

 private:
  std::vector<NodeId> parent_;
};

}  // namespace

ComponentInfo ComputeWeakComponents(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  UnionFind uf(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      uf.Union(u, v);
    }
  }

  // Count members per root.
  std::vector<NodeId> size_of_root(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    ++size_of_root[uf.Find(v)];
  }

  // Collect roots and sort by size descending (ties by root id for
  // determinism).
  std::vector<NodeId> roots;
  for (NodeId v = 0; v < n; ++v) {
    if (size_of_root[v] > 0) {
      roots.push_back(v);
    }
  }
  std::sort(roots.begin(), roots.end(), [&](NodeId a, NodeId b) {
    if (size_of_root[a] != size_of_root[b]) {
      return size_of_root[a] > size_of_root[b];
    }
    return a < b;
  });

  ComponentInfo info;
  info.sizes.reserve(roots.size());
  std::vector<NodeId> label_of_root(n, 0);
  for (NodeId i = 0; i < roots.size(); ++i) {
    label_of_root[roots[i]] = i;
    info.sizes.push_back(size_of_root[roots[i]]);
  }
  info.component_of.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    info.component_of[v] = label_of_root[uf.Find(v)];
  }
  return info;
}

}  // namespace subsim
