#ifndef SUBSIM_GRAPH_WEIGHT_MODELS_H_
#define SUBSIM_GRAPH_WEIGHT_MODELS_H_

#include <cstdint>
#include <string>

#include "subsim/graph/types.h"
#include "subsim/util/status.h"

namespace subsim {

/// Edge-probability models from the paper's experiments (Section 7).
///
/// All functions assign weights in place on an `EdgeList` (before CSR
/// construction), because several models need global information (in-degrees
/// or per-node normalization) that is cheapest to compute on the raw list.
enum class WeightModel {
  /// Weighted Cascade: p(u, v) = 1 / d_in(v).
  kWeightedCascade,
  /// Uniform IC: every edge carries the same probability p.
  kUniformIc,
  /// WC variant (paper Section 7): p(u, v) = min{1, theta / d_in(v)}.
  /// theta >= 1 scales the influence level; theta = 1 recovers WC.
  kWcVariant,
  /// Exponential(lambda = 1) weights, then each node's incoming weights are
  /// rescaled so they sum to 1 (paper's "skewed" setting).
  kExponential,
  /// Weibull(a, b) weights with a, b ~ Uniform[0, 10] per edge, then per-node
  /// rescaling of incoming weights to sum 1 (following Tang et al. [38]).
  kWeibull,
  /// Trivalency: each edge uniformly from {0.1, 0.01, 0.001}. A classic IC
  /// benchmark setting; included as an extension.
  kTrivalency,
  /// Linear Threshold normalization: p(u, v) = 1 / d_in(v); identical weights
  /// to WC but declared separately because LT semantics interpret them as
  /// threshold mass instead of independent coin flips.
  kLinearThreshold,
};

/// Parameters for `AssignWeights`. Only the fields used by the chosen model
/// are read.
struct WeightModelParams {
  /// kUniformIc: the shared edge probability.
  double uniform_p = 0.1;
  /// kWcVariant: the theta multiplier (>= 0; the paper uses >= 1).
  double wc_variant_theta = 1.0;
  /// kExponential: the rate lambda.
  double exponential_lambda = 1.0;
  /// kWeibull: upper bound of the uniform range for shape/scale draws.
  double weibull_param_max = 10.0;
  /// Seed for the models that draw random weights.
  std::uint64_t seed = 0;
};

/// Overwrites `list->edges[i].weight` per the chosen model.
/// Fails with InvalidArgument on out-of-range parameters.
Status AssignWeights(WeightModel model, const WeightModelParams& params,
                     EdgeList* list);

/// Parses "wc", "uniform", "wc-variant", "exponential", "weibull",
/// "trivalency", "lt" (case-sensitive).
Result<WeightModel> ParseWeightModel(const std::string& name);

/// Inverse of `ParseWeightModel`.
const char* WeightModelName(WeightModel model);

}  // namespace subsim

#endif  // SUBSIM_GRAPH_WEIGHT_MODELS_H_
