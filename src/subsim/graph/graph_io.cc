#include "subsim/graph/graph_io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "subsim/util/string_util.h"

namespace subsim {

namespace {

constexpr std::uint64_t kBinaryMagic = 0x53554253494d4731ull;  // "SUBSIMG1"

}  // namespace

Result<EdgeList> ReadEdgeListText(const std::string& path,
                                  const EdgeListReadOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  return ParseEdgeListText(in, options, path);
}

Result<EdgeList> ParseEdgeListText(std::istream& in,
                                   const EdgeListReadOptions& options,
                                   const std::string& origin) {
  EdgeList list;
  NodeId max_id = 0;
  bool any_node = false;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#' || stripped[0] == '%') {
      continue;
    }
    const auto fields = SplitAndTrim(stripped, " \t,");
    if (fields.size() < 2) {
      return Status::InvalidArgument(origin + ":" + std::to_string(line_no) +
                                     ": expected 'src dst [weight]'");
    }
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    if (!ParseUint64(fields[0], &src) || !ParseUint64(fields[1], &dst)) {
      return Status::InvalidArgument(origin + ":" + std::to_string(line_no) +
                                     ": malformed node id");
    }
    if (src > 0xFFFFFFFEull || dst > 0xFFFFFFFEull) {
      return Status::InvalidArgument(origin + ":" + std::to_string(line_no) +
                                     ": node id exceeds 32-bit range");
    }
    double weight = 0.0;
    if (options.read_weights && fields.size() >= 3) {
      if (!ParseDouble(fields[2], &weight)) {
        return Status::InvalidArgument(origin + ":" + std::to_string(line_no) +
                                       ": malformed weight");
      }
    }
    const NodeId s = static_cast<NodeId>(src);
    const NodeId d = static_cast<NodeId>(dst);
    list.edges.push_back(Edge{s, d, weight});
    if (options.undirected) {
      list.edges.push_back(Edge{d, s, weight});
    }
    max_id = std::max(max_id, std::max(s, d));
    any_node = true;
  }
  if (in.bad()) {
    return Status::IoError("read error on " + origin);
  }
  list.num_nodes = any_node ? max_id + 1 : 0;
  return list;
}

Status WriteEdgeListText(const EdgeList& list, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out << "# subsim edge list: " << list.num_nodes << " nodes, "
      << list.edges.size() << " edges\n";
  for (const Edge& e : list.edges) {
    out << e.src << ' ' << e.dst << ' ' << e.weight << '\n';
  }
  out.flush();
  if (!out) {
    return Status::IoError("write error on " + path);
  }
  return Status::Ok();
}

Status WriteEdgeListBinary(const EdgeList& list, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  const std::uint64_t n = list.num_nodes;
  const std::uint64_t m = list.edges.size();
  out.write(reinterpret_cast<const char*>(&kBinaryMagic), sizeof(kBinaryMagic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(list.edges.data()),
            static_cast<std::streamsize>(m * sizeof(Edge)));
  out.flush();
  if (!out) {
    return Status::IoError("write error on " + path);
  }
  return Status::Ok();
}

Result<EdgeList> ReadEdgeListBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  return ParseEdgeListBinary(in, path);
}

Result<EdgeList> ParseEdgeListBinary(std::istream& in,
                                     const std::string& origin) {
  // The header is untrusted input: every field is validated against the
  // actual stream size before a single byte drives an allocation.
  in.seekg(0, std::ios::end);
  const std::streamoff stream_size = in.tellg();
  in.seekg(0, std::ios::beg);
  if (!in || stream_size < 0) {
    return Status::IoError(origin + ": cannot determine stream size");
  }
  constexpr std::streamoff kHeaderBytes = 3 * sizeof(std::uint64_t);
  if (stream_size < kHeaderBytes) {
    return Status::InvalidArgument(origin +
                                   ": not a subsim binary edge list");
  }

  const auto read_u64 = [&in](std::uint64_t* out) {
    in.read(reinterpret_cast<char*>(out), sizeof(*out));
    return in.gcount() == static_cast<std::streamsize>(sizeof(*out)) &&
           static_cast<bool>(in);
  };
  std::uint64_t magic = 0;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  if (!read_u64(&magic) || magic != kBinaryMagic) {
    return Status::InvalidArgument(origin +
                                   ": not a subsim binary edge list");
  }
  if (!read_u64(&n) || !read_u64(&m)) {
    return Status::IoError(origin + ": truncated header");
  }
  if (n > 0xFFFFFFFFull) {
    return Status::InvalidArgument(origin +
                                   ": node count exceeds 32-bit range");
  }
  const std::uint64_t payload_bytes =
      static_cast<std::uint64_t>(stream_size - kHeaderBytes);
  // Divide instead of multiplying so a huge m cannot overflow, then be
  // "within bounds", and drive a giant resize.
  if (m > payload_bytes / sizeof(Edge)) {
    return Status::InvalidArgument(
        origin + ": edge count " + std::to_string(m) +
        " exceeds payload (" + std::to_string(payload_bytes) + " bytes)");
  }

  EdgeList list;
  list.num_nodes = static_cast<NodeId>(n);
  list.edges.resize(m);
  const std::streamsize payload =
      static_cast<std::streamsize>(m * sizeof(Edge));
  in.read(reinterpret_cast<char*>(list.edges.data()), payload);
  if (in.gcount() != payload || !in) {
    return Status::IoError(origin + ": truncated edge payload");
  }
  for (std::size_t i = 0; i < list.edges.size(); ++i) {
    const Edge& e = list.edges[i];
    if (e.src >= n || e.dst >= n) {
      return Status::InvalidArgument(
          origin + ": edge " + std::to_string(i) + " references node " +
          std::to_string(std::max(e.src, e.dst)) + " outside [0, " +
          std::to_string(n) + ")");
    }
  }
  return list;
}

}  // namespace subsim
