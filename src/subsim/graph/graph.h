#ifndef SUBSIM_GRAPH_GRAPH_H_
#define SUBSIM_GRAPH_GRAPH_H_

#include <cmath>
#include <span>
#include <vector>

#include "subsim/graph/types.h"
#include "subsim/util/check.h"
#include "subsim/util/prefetch.h"

namespace subsim {

/// Packed per-node in-row descriptor: everything a reverse expansion needs
/// to know about node v before touching its adjacency row — CSR position,
/// in-degree, and the shared edge weight when the row is uniform (WC /
/// Uniform IC). 16 bytes, four to a cache line, so the batched RR kernels
/// pay ONE line per node for metadata that otherwise lives in three
/// separate O(n) arrays (`in_offsets_`, `uniform_in_weights_`, and a
/// weights-row read); on DRAM-resident graphs those scattered reads were
/// the dominant stall source.
///
/// `uniform_weight` is bit-identical to `InWeights(v)[i]` for every i of a
/// uniform row (the builder copies, never recomputes), and NaN when the
/// row has skewed weights. `begin` is 32-bit — the builder refuses graphs
/// with 2^32 or more edges, far above the paper's largest dataset.
struct InRowMeta {
  double uniform_weight = 0.0;
  std::uint32_t begin = 0;
  std::uint32_t degree = 0;

  /// True when every in-edge shares `uniform_weight` (false = NaN marker).
  bool uniform() const { return !std::isnan(uniform_weight); }
};
static_assert(sizeof(InRowMeta) == 16, "InRowMeta must pack 4 per line");

/// Immutable directed graph in compressed-sparse-row form.
///
/// Both directions are materialized:
///  * out-adjacency — used by forward cascade simulation (`eval/`) and by
///    the out-degree tie-break of the revised greedy (Algorithm 6);
///  * in-adjacency — used by every reverse-reachable-set generator, which
///    traverses edges against their direction.
///
/// Per-edge propagation probabilities are stored alongside both adjacency
/// arrays (duplicated for locality). In-neighbor lists may additionally be
/// sorted in descending weight order (see `in_sorted_by_weight()`), which
/// the index-free general-IC sampler requires (paper Section 3.3).
///
/// Instances are created by `GraphBuilder`; the class itself is read-only,
/// cheap to move, and deliberately has no mutation API.
class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  NodeId num_nodes() const { return num_nodes_; }
  EdgeIndex num_edges() const { return num_edges_; }

  /// Average degree m/n (0 for the empty graph).
  double average_degree() const {
    return num_nodes_ == 0
               ? 0.0
               : static_cast<double>(num_edges_) / num_nodes_;
  }

  NodeId OutDegree(NodeId u) const {
    SUBSIM_DCHECK(u < num_nodes_, "node out of range");
    return static_cast<NodeId>(out_offsets_[u + 1] - out_offsets_[u]);
  }

  NodeId InDegree(NodeId v) const {
    SUBSIM_DCHECK(v < num_nodes_, "node out of range");
    return static_cast<NodeId>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// Targets of u's out-edges.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    SUBSIM_DCHECK(u < num_nodes_, "node out of range");
    return {out_targets_.data() + out_offsets_[u],
            out_targets_.data() + out_offsets_[u + 1]};
  }

  /// p(u, v) for each out-edge of u, aligned with `OutNeighbors(u)`.
  std::span<const double> OutWeights(NodeId u) const {
    SUBSIM_DCHECK(u < num_nodes_, "node out of range");
    return {out_weights_.data() + out_offsets_[u],
            out_weights_.data() + out_offsets_[u + 1]};
  }

  /// Sources of v's in-edges.
  std::span<const NodeId> InNeighbors(NodeId v) const {
    SUBSIM_DCHECK(v < num_nodes_, "node out of range");
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }

  /// p(u, v) for each in-edge of v, aligned with `InNeighbors(v)`.
  std::span<const double> InWeights(NodeId v) const {
    SUBSIM_DCHECK(v < num_nodes_, "node out of range");
    return {in_weights_.data() + in_offsets_[v],
            in_weights_.data() + in_offsets_[v + 1]};
  }

  /// Sum of in-edge weights of v (the LT activation budget; also the
  /// expected number of sampled in-neighbors under IC).
  double InWeightSum(NodeId v) const {
    SUBSIM_DCHECK(v < num_nodes_, "node out of range");
    return in_weight_sums_[v];
  }

  /// True when all in-edges of v carry the same weight (WC / Uniform IC),
  /// enabling the pure geometric-skip fast path of SUBSIM.
  bool HasUniformInWeights(NodeId v) const {
    SUBSIM_DCHECK(v < num_nodes_, "node out of range");
    return uniform_in_weights_[v] != 0;
  }

  /// The shared in-edge weight of a uniform-weight node — bit-identical to
  /// `InWeights(v)[i]` for every i (the builder copies it, never
  /// recomputes), so samplers may substitute it for row reads without
  /// perturbing any draw comparison. Zero when v has no in-edges;
  /// meaningless (NaN) when `HasUniformInWeights(v)` is false.
  double UniformInWeight(NodeId v) const {
    SUBSIM_DCHECK(v < num_nodes_, "node out of range");
    SUBSIM_DCHECK(uniform_in_weights_[v] != 0,
                  "UniformInWeight on a skew-weighted node");
    return in_row_meta_[v].uniform_weight;
  }

  /// The packed in-row descriptor of v (see `InRowMeta`). The batched RR
  /// kernels read this instead of `in_offsets_` + uniformity checks so a
  /// node's expansion metadata costs one cache line.
  const InRowMeta& InMeta(NodeId v) const {
    SUBSIM_DCHECK(v < num_nodes_, "node out of range");
    return in_row_meta_[v];
  }

  /// Software-prefetch hook for `InMeta(v)`.
  void PrefetchInMeta(NodeId v) const {
    SUBSIM_DCHECK(v < num_nodes_, "node out of range");
    PrefetchRead(in_row_meta_.data() + v);
  }

  /// In-neighbor sources addressed by a row position from an `InRowMeta`
  /// (or a kernel-private packed descriptor holding the same position).
  std::span<const NodeId> InSourcesAt(std::size_t begin,
                                      std::size_t count) const {
    SUBSIM_DCHECK(begin + count <= in_sources_.size(), "row out of range");
    return {in_sources_.data() + begin, count};
  }

  /// In-edge weights addressed by a row position, aligned with
  /// `InSourcesAt(begin, count)`.
  std::span<const double> InWeightsAt(std::size_t begin,
                                      std::size_t count) const {
    SUBSIM_DCHECK(begin + count <= in_weights_.size(), "row out of range");
    return {in_weights_.data() + begin, count};
  }

  /// True if the builder sorted every in-neighbor list in descending weight
  /// order (required by the index-free sorted subset sampler).
  bool in_sorted_by_weight() const { return in_sorted_by_weight_; }

  /// Software-prefetch hook: pulls the in-offset entry of `v` toward the
  /// cache. The batched RR kernel calls this when `v` is activated, several
  /// frontier steps before `v` is dequeued and its offsets are actually
  /// read. A no-op on compilers without a prefetch builtin.
  void PrefetchInOffsets(NodeId v) const {
    SUBSIM_DCHECK(v < num_nodes_, "node out of range");
    PrefetchRead(in_offsets_.data() + v);
  }

  /// Software-prefetch hook for `InWeightSum(v)` — the first thing the LT
  /// live-edge walk reads at each step.
  void PrefetchInWeightSum(NodeId v) const {
    SUBSIM_DCHECK(v < num_nodes_, "node out of range");
    PrefetchRead(in_weight_sums_.data() + v);
  }

  /// Software-prefetch hook: pulls the leading cache lines of `v`'s
  /// in-neighbor array, plus the leading lines of its in-weight row only
  /// when the row has skewed weights — mirroring exactly what a
  /// uniform-aware expansion will read, so no bandwidth (or line-fill
  /// buffer) is spent on weight lines the sampler will never touch (the
  /// uniform weight rides inside `InRowMeta`). Reads `in_row_meta_[v]`
  /// (expected warm after `PrefetchInMeta`); issues at most `max_lines`
  /// lines per array. Returns the number of prefetch instructions issued,
  /// which the batched kernel accumulates into the `rr.prefetch_lines`
  /// counter.
  unsigned PrefetchInRow(NodeId v, unsigned max_lines = 2) const {
    SUBSIM_DCHECK(v < num_nodes_, "node out of range");
    const InRowMeta& meta = in_row_meta_[v];
    if (meta.degree == 0) {
      return 0;
    }
    unsigned lines =
        PrefetchReadRange(in_sources_.data() + meta.begin,
                          meta.degree * sizeof(NodeId), max_lines);
    if (!meta.uniform()) {
      lines += PrefetchReadRange(in_weights_.data() + meta.begin,
                                 meta.degree * sizeof(double), max_lines);
    }
    return lines;
  }

  /// Reconstructs the raw edge list (out-edge order). Mostly for IO and
  /// tests.
  EdgeList ToEdgeList() const;

 private:
  friend class GraphBuilder;

  NodeId num_nodes_ = 0;
  EdgeIndex num_edges_ = 0;
  bool in_sorted_by_weight_ = false;

  std::vector<EdgeIndex> out_offsets_;  // size n+1
  std::vector<NodeId> out_targets_;     // size m
  std::vector<double> out_weights_;     // size m

  std::vector<EdgeIndex> in_offsets_;  // size n+1
  std::vector<NodeId> in_sources_;     // size m
  std::vector<double> in_weights_;     // size m

  std::vector<double> in_weight_sums_;       // size n
  std::vector<std::uint8_t> uniform_in_weights_;  // size n
  std::vector<InRowMeta> in_row_meta_;       // size n; see InRowMeta
};

}  // namespace subsim

#endif  // SUBSIM_GRAPH_GRAPH_H_
