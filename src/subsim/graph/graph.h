#ifndef SUBSIM_GRAPH_GRAPH_H_
#define SUBSIM_GRAPH_GRAPH_H_

#include <span>
#include <vector>

#include "subsim/graph/types.h"
#include "subsim/util/check.h"

namespace subsim {

/// Immutable directed graph in compressed-sparse-row form.
///
/// Both directions are materialized:
///  * out-adjacency — used by forward cascade simulation (`eval/`) and by
///    the out-degree tie-break of the revised greedy (Algorithm 6);
///  * in-adjacency — used by every reverse-reachable-set generator, which
///    traverses edges against their direction.
///
/// Per-edge propagation probabilities are stored alongside both adjacency
/// arrays (duplicated for locality). In-neighbor lists may additionally be
/// sorted in descending weight order (see `in_sorted_by_weight()`), which
/// the index-free general-IC sampler requires (paper Section 3.3).
///
/// Instances are created by `GraphBuilder`; the class itself is read-only,
/// cheap to move, and deliberately has no mutation API.
class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  NodeId num_nodes() const { return num_nodes_; }
  EdgeIndex num_edges() const { return num_edges_; }

  /// Average degree m/n (0 for the empty graph).
  double average_degree() const {
    return num_nodes_ == 0
               ? 0.0
               : static_cast<double>(num_edges_) / num_nodes_;
  }

  NodeId OutDegree(NodeId u) const {
    SUBSIM_DCHECK(u < num_nodes_, "node out of range");
    return static_cast<NodeId>(out_offsets_[u + 1] - out_offsets_[u]);
  }

  NodeId InDegree(NodeId v) const {
    SUBSIM_DCHECK(v < num_nodes_, "node out of range");
    return static_cast<NodeId>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// Targets of u's out-edges.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    SUBSIM_DCHECK(u < num_nodes_, "node out of range");
    return {out_targets_.data() + out_offsets_[u],
            out_targets_.data() + out_offsets_[u + 1]};
  }

  /// p(u, v) for each out-edge of u, aligned with `OutNeighbors(u)`.
  std::span<const double> OutWeights(NodeId u) const {
    SUBSIM_DCHECK(u < num_nodes_, "node out of range");
    return {out_weights_.data() + out_offsets_[u],
            out_weights_.data() + out_offsets_[u + 1]};
  }

  /// Sources of v's in-edges.
  std::span<const NodeId> InNeighbors(NodeId v) const {
    SUBSIM_DCHECK(v < num_nodes_, "node out of range");
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }

  /// p(u, v) for each in-edge of v, aligned with `InNeighbors(v)`.
  std::span<const double> InWeights(NodeId v) const {
    SUBSIM_DCHECK(v < num_nodes_, "node out of range");
    return {in_weights_.data() + in_offsets_[v],
            in_weights_.data() + in_offsets_[v + 1]};
  }

  /// Sum of in-edge weights of v (the LT activation budget; also the
  /// expected number of sampled in-neighbors under IC).
  double InWeightSum(NodeId v) const {
    SUBSIM_DCHECK(v < num_nodes_, "node out of range");
    return in_weight_sums_[v];
  }

  /// True when all in-edges of v carry the same weight (WC / Uniform IC),
  /// enabling the pure geometric-skip fast path of SUBSIM.
  bool HasUniformInWeights(NodeId v) const {
    SUBSIM_DCHECK(v < num_nodes_, "node out of range");
    return uniform_in_weights_[v] != 0;
  }

  /// True if the builder sorted every in-neighbor list in descending weight
  /// order (required by the index-free sorted subset sampler).
  bool in_sorted_by_weight() const { return in_sorted_by_weight_; }

  /// Reconstructs the raw edge list (out-edge order). Mostly for IO and
  /// tests.
  EdgeList ToEdgeList() const;

 private:
  friend class GraphBuilder;

  NodeId num_nodes_ = 0;
  EdgeIndex num_edges_ = 0;
  bool in_sorted_by_weight_ = false;

  std::vector<EdgeIndex> out_offsets_;  // size n+1
  std::vector<NodeId> out_targets_;     // size m
  std::vector<double> out_weights_;     // size m

  std::vector<EdgeIndex> in_offsets_;  // size n+1
  std::vector<NodeId> in_sources_;     // size m
  std::vector<double> in_weights_;     // size m

  std::vector<double> in_weight_sums_;       // size n
  std::vector<std::uint8_t> uniform_in_weights_;  // size n
};

}  // namespace subsim

#endif  // SUBSIM_GRAPH_GRAPH_H_
