#ifndef SUBSIM_COVERAGE_MAX_COVERAGE_H_
#define SUBSIM_COVERAGE_MAX_COVERAGE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "subsim/graph/graph.h"
#include "subsim/rrset/rr_collection.h"

namespace subsim {

class MetricsRegistry;

/// Options for the greedy max-coverage pass over an `RrCollection`.
struct CoverageGreedyOptions {
  /// Number of seeds to select (capped at the number of graph nodes).
  std::uint32_t k = 1;

  /// Algorithm 6 (Revised-Greedy): among nodes with maximal marginal
  /// coverage, prefer the one with the largest out-degree — nodes likelier
  /// to be hit by future sentinel-truncated RR sets. Requires `graph`.
  /// When false this is exactly Algorithm 1 (ties broken by node id, for
  /// determinism).
  bool tie_break_by_out_degree = false;
  const Graph* graph = nullptr;

  /// Algorithm 8 line 5: ignore RR sets whose generation hit a sentinel
  /// (they are covered by the sentinel set and contribute zero marginal to
  /// everything else).
  bool exclude_sentinel_hit_sets = false;

  /// Nodes that must not be selected (HIST phase 2 passes the sentinel set
  /// so the residual greedy cannot return duplicates).
  std::span<const NodeId> excluded_nodes;

  /// How many of the largest singleton coverages to sum into
  /// `top_k_singleton_sum`. 0 means "use k". HIST phase 2 selects k - b
  /// seeds but needs the maxMC term over the full k for Equation (2).
  std::uint32_t singleton_top_count = 0;

  /// Approximate-coverage mode (`ImOptions::approx_coverage`): lazy-greedy
  /// marginals come from per-candidate HyperLogLog sketches over RR-set
  /// ids — O(2^hll_precision) per refresh instead of an inverted-index
  /// recount — with an error-adaptive exact refinement whenever the
  /// estimated best is within the sketch error bar of the runner-up.
  /// Selected gains, `coverage_prefix`, and `top_k_singleton_sum` are
  /// always exact (recomputed from the exact covered bitmap); only the
  /// winner of a near-tie may differ from exact greedy. Deterministic:
  /// sketch hashing is a fixed mixer, so runs reproduce byte-identically.
  bool approx_coverage = false;

  /// log2 of registers per sketch (m = 2^p; rel. std. error ≈ 1.04/√m).
  /// Clamped to [4, 16]. Memory: (n + 1) * 2^p bytes while the pass runs,
  /// reported by the `coverage.hll_bytes` gauge.
  std::uint32_t hll_precision = 8;

  /// Optional sink for `coverage.hll_bytes` / `coverage.hll_refinements`.
  MetricsRegistry* metrics = nullptr;
};

/// Output of the greedy pass. `gains[i]` is the marginal coverage of the
/// (i+1)-th seed; `coverage_prefix[i]` is the total coverage of the first
/// i+1 seeds. Both have `seeds.size()` entries; gains are non-increasing
/// under exact greedy (under `approx_coverage` the selection order is
/// sketch-guided, so gains are exact per seed but only *approximately*
/// sorted).
struct CoverageGreedyResult {
  std::vector<NodeId> seeds;
  std::vector<std::uint64_t> gains;
  std::vector<std::uint64_t> coverage_prefix;

  /// Number of RR sets the pass considered (total minus excluded).
  std::uint64_t considered_sets = 0;

  /// Exact sum of the k largest singleton coverages Λ(v) — the i = 0 term
  /// of the paper's Λ^u upper bound with maxMC evaluated exactly.
  std::uint64_t top_k_singleton_sum = 0;

  std::uint64_t total_coverage() const {
    return coverage_prefix.empty() ? 0 : coverage_prefix.back();
  }
};

/// Greedy maximum coverage (Algorithm 1 / Algorithm 6) with CELF-style lazy
/// marginal re-evaluation. The lazy heap orders nodes by
/// (marginal, out-degree, node id); because marginals only shrink as the
/// seed set grows while the other keys are constant, a popped node whose
/// refreshed key still dominates the heap top is an exact argmax under that
/// order — so the selected sequence is identical to the textbook greedy,
/// including the out-degree tie-break, at a fraction of the cost.
///
/// Takes a prefix view so cache-backed runs (`serve/`) can evaluate exactly
/// the sets a cold run would have had; a plain `RrCollection` converts
/// implicitly to its full-length view.
CoverageGreedyResult RunCoverageGreedy(RrCollectionView collection,
                                       const CoverageGreedyOptions& options);

/// Λ_R(S): number of RR sets in `collection` intersecting `seeds`.
/// O(sum of inverted-index lists of the seeds).
std::uint64_t ComputeCoverage(RrCollectionView collection,
                              std::span<const NodeId> seeds);

}  // namespace subsim

#endif  // SUBSIM_COVERAGE_MAX_COVERAGE_H_
