#include "subsim/coverage/bounds.h"

#include <algorithm>
#include <cmath>

#include "subsim/util/check.h"

namespace subsim {

double OpimLowerBound(std::uint64_t coverage, std::uint64_t num_sets,
                      NodeId num_nodes, double delta_l) {
  SUBSIM_CHECK(num_sets > 0, "lower bound needs at least one RR set");
  SUBSIM_CHECK(delta_l > 0.0 && delta_l < 1.0, "delta_l must be in (0,1)");
  const double eta = std::log(1.0 / delta_l);
  const double lambda = static_cast<double>(coverage);
  const double root =
      std::sqrt(lambda + 2.0 * eta / 9.0) - std::sqrt(eta / 2.0);
  const double estimate = root * root - eta / 18.0;
  return estimate * static_cast<double>(num_nodes) /
         static_cast<double>(num_sets);
}

double OpimUpperBound(double coverage_upper, std::uint64_t num_sets,
                      NodeId num_nodes, double delta_u) {
  SUBSIM_CHECK(num_sets > 0, "upper bound needs at least one RR set");
  SUBSIM_CHECK(delta_u > 0.0 && delta_u < 1.0, "delta_u must be in (0,1)");
  SUBSIM_CHECK(coverage_upper >= 0.0, "coverage upper bound negative");
  const double eta = std::log(1.0 / delta_u);
  const double root =
      std::sqrt(coverage_upper + eta / 2.0) + std::sqrt(eta / 2.0);
  return root * root * static_cast<double>(num_nodes) /
         static_cast<double>(num_sets);
}

double CoverageUpperBoundFromGreedy(const CoverageGreedyResult& greedy,
                                    std::uint32_t k) {
  // i = 0 term, maxMC evaluated exactly.
  double best = static_cast<double>(greedy.top_k_singleton_sum);

  // i >= 1 terms relaxed via the next greedy gain. For the final prefix
  // the max remaining marginal is unknown but cannot exceed the last gain
  // (gains are non-increasing); it is exactly zero once every considered
  // set is covered.
  const std::size_t steps = greedy.gains.size();
  const bool exhausted = greedy.total_coverage() == greedy.considered_sets;
  for (std::size_t i = 1; i <= steps; ++i) {
    const double next_gain =
        i < steps ? static_cast<double>(greedy.gains[i])
                  : (exhausted ? 0.0
                               : static_cast<double>(greedy.gains.back()));
    const double candidate =
        static_cast<double>(greedy.coverage_prefix[i - 1]) +
        static_cast<double>(k) * next_gain;
    best = std::min(best, candidate);
  }

  // Λᵘ can never be below the coverage the greedy itself achieved.
  best = std::max(best, static_cast<double>(greedy.total_coverage()));
  return best;
}

}  // namespace subsim
