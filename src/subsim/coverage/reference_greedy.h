#ifndef SUBSIM_COVERAGE_REFERENCE_GREEDY_H_
#define SUBSIM_COVERAGE_REFERENCE_GREEDY_H_

#include "subsim/coverage/max_coverage.h"

namespace subsim {

/// Textbook greedy max-coverage: recompute every node's marginal coverage
/// with a full scan at each of the k steps — O(n + total index size) per
/// step, no lazy evaluation, no heap. Semantically identical to
/// `RunCoverageGreedy` (same options, same tie-breaks, same outputs).
///
/// This exists for differential testing: the CELF implementation's
/// correctness argument is subtle (stale-key domination), so the test
/// suite checks both implementations produce byte-identical results across
/// randomized instances. Production code should use `RunCoverageGreedy`.
CoverageGreedyResult RunReferenceCoverageGreedy(
    const RrCollection& collection, const CoverageGreedyOptions& options);

}  // namespace subsim

#endif  // SUBSIM_COVERAGE_REFERENCE_GREEDY_H_
