#include "subsim/coverage/hll_sketch.h"

#include <bit>
#include <cmath>

namespace subsim {

namespace {

/// Flajolet et al.'s bias-correction constant for m registers.
double HllAlpha(std::size_t m) {
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

/// Raw harmonic-mean estimate plus the standard small-range (linear
/// counting) correction; the large-range correction is irrelevant at RR-set
/// cardinalities (≪ 2^32).
double EstimateFromAccumulators(std::size_t m, double inverse_sum,
                                std::size_t zero_registers) {
  const double md = static_cast<double>(m);
  const double raw = HllAlpha(m) * md * md / inverse_sum;
  if (raw <= 2.5 * md && zero_registers > 0) {
    return md * std::log(md / static_cast<double>(zero_registers));
  }
  return raw;
}

}  // namespace

double HllRelativeStdError(std::uint32_t precision) {
  return 1.04 / std::sqrt(static_cast<double>(HllNumRegisters(precision)));
}

void HllObserve(std::span<std::uint8_t> registers, std::uint32_t precision,
                std::uint64_t item) {
  SUBSIM_DCHECK(registers.size() == HllNumRegisters(precision),
                "register span does not match precision");
  const std::uint64_t h = HllHash(item);
  const std::size_t j = static_cast<std::size_t>(h >> (64 - precision));
  // Rank = 1 + leading zeros of the remaining bits (bounded by the
  // remaining width so a zero suffix stays representable).
  const std::uint64_t rest = (h << precision) | (std::uint64_t{1} << (precision - 1));
  const std::uint8_t rank = static_cast<std::uint8_t>(
      std::countl_zero(rest) + 1);
  if (rank > registers[j]) {
    registers[j] = rank;
  }
}

double HllEstimate(std::span<const std::uint8_t> registers) {
  double inverse_sum = 0.0;
  std::size_t zeros = 0;
  for (const std::uint8_t r : registers) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) {
      ++zeros;
    }
  }
  return EstimateFromAccumulators(registers.size(), inverse_sum, zeros);
}

double HllEstimateUnion(std::span<const std::uint8_t> a,
                        std::span<const std::uint8_t> b) {
  SUBSIM_DCHECK(a.size() == b.size(), "union of mismatched sketches");
  double inverse_sum = 0.0;
  std::size_t zeros = 0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    const std::uint8_t r = a[j] > b[j] ? a[j] : b[j];
    inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) {
      ++zeros;
    }
  }
  return EstimateFromAccumulators(a.size(), inverse_sum, zeros);
}

void HllMerge(std::span<std::uint8_t> into,
              std::span<const std::uint8_t> from) {
  SUBSIM_DCHECK(into.size() == from.size(), "merge of mismatched sketches");
  for (std::size_t j = 0; j < into.size(); ++j) {
    if (from[j] > into[j]) {
      into[j] = from[j];
    }
  }
}

}  // namespace subsim
