#ifndef SUBSIM_COVERAGE_HLL_SKETCH_H_
#define SUBSIM_COVERAGE_HLL_SKETCH_H_

#include <cstdint>
#include <span>

#include "subsim/util/check.h"

namespace subsim {

/// HyperLogLog count-distinct primitives for approximate coverage.
///
/// A sketch is a span of `m = 2^precision` one-byte registers; register j
/// holds the maximum `1 + leading-zero count` of the hashed items routed to
/// it. Relative standard error of the cardinality estimate is ≈ 1.04/√m
/// (docs/memory.md derives how the greedy refinement consumes this bound).
///
/// Sketches over RR-set ids are unions-of-items, so the sketch of a union
/// is the register-wise max — which is what lets the greedy keep one
/// static sketch per candidate node plus a single running "covered" sketch
/// and estimate any marginal in O(m), independent of how many RR sets the
/// candidate appears in.
///
/// All functions are deterministic: the item hash is a fixed splitmix64
/// finalizer, so approximate runs are exactly reproducible.

/// Number of registers for a precision (register-index bits).
inline std::size_t HllNumRegisters(std::uint32_t precision) {
  return std::size_t{1} << precision;
}

/// 1.04/√m — the relative standard error of the estimator.
double HllRelativeStdError(std::uint32_t precision);

/// Deterministic 64-bit mixer (splitmix64 finalizer) used for items.
inline std::uint64_t HllHash(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Folds one item into `registers` (size must be 2^precision).
void HllObserve(std::span<std::uint8_t> registers, std::uint32_t precision,
                std::uint64_t item);

/// Cardinality estimate of one sketch.
double HllEstimate(std::span<const std::uint8_t> registers);

/// Cardinality estimate of the union of two same-precision sketches
/// (register-wise max, computed on the fly — neither input is modified).
double HllEstimateUnion(std::span<const std::uint8_t> a,
                        std::span<const std::uint8_t> b);

/// Merges `from` into `into` (register-wise max).
void HllMerge(std::span<std::uint8_t> into,
              std::span<const std::uint8_t> from);

}  // namespace subsim

#endif  // SUBSIM_COVERAGE_HLL_SKETCH_H_
