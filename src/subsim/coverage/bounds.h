#ifndef SUBSIM_COVERAGE_BOUNDS_H_
#define SUBSIM_COVERAGE_BOUNDS_H_

#include <cstdint>

#include "subsim/coverage/max_coverage.h"
#include "subsim/graph/types.h"

namespace subsim {

/// Equation (1): high-confidence lower bound on the expected influence of a
/// seed set S from its coverage on an *independent* collection of `num_sets`
/// random RR sets:
///
///   I⁻(S) = ( ( sqrt(Λ + 2η/9) − sqrt(η/2) )² − η/18 ) · n / θ,
///
/// with η = ln(1/δ_l). Fails (i.e. is below the truth) with probability at
/// most δ_l. May be negative for tiny coverage; callers clamp as needed.
double OpimLowerBound(std::uint64_t coverage, std::uint64_t num_sets,
                      NodeId num_nodes, double delta_l);

/// Equation (2): high-confidence upper bound on the expected influence of
/// the *optimal* seed set, from an upper bound `coverage_upper` on its
/// coverage:
///
///   I⁺(S_k^o) = ( sqrt(Λᵘ + η/2) + sqrt(η/2) )² · n / θ,
///
/// with η = ln(1/δ_u). Fails with probability at most δ_u.
double OpimUpperBound(double coverage_upper, std::uint64_t num_sets,
                      NodeId num_nodes, double delta_u);

/// Λᵘ(S_k^o): upper bound on the optimal seed set's coverage, derived from
/// a greedy run via submodularity (the min-over-prefixes construction under
/// Equation (2) in the paper):
///
///   Λᵘ = min_i ( Λ(S_i*) + Σ_{v ∈ maxMC(S_i*, k)} Λ(v | S_i*) ).
///
/// This implementation evaluates the i = 0 term exactly (sum of the k
/// largest singleton coverages) and relaxes the i >= 1 terms to
/// Λ(S_i*) + k · g_{i+1}, where g_{i+1} is the (i+1)-th greedy gain — a
/// valid over-estimate of the top-k marginal sum because greedy gains
/// dominate all remaining marginals. The result is therefore never below
/// the paper's exact Λᵘ (the bound stays sound, at slightly more RR sets).
double CoverageUpperBoundFromGreedy(const CoverageGreedyResult& greedy,
                                    std::uint32_t k);

}  // namespace subsim

#endif  // SUBSIM_COVERAGE_BOUNDS_H_
