#include "subsim/coverage/max_coverage.h"

#include <algorithm>
#include <queue>

#include "subsim/util/check.h"

namespace subsim {

namespace {

/// Lazy-heap entry. Ordering is lexicographic on
/// (marginal, out_degree, node) so Algorithm 6's tie-break is part of the
/// priority; with tie-break disabled out_degree is fixed to 0 and ties fall
/// through to the node id (descending id pops first; any argmax is valid
/// for Algorithm 1, the id merely makes runs deterministic).
struct HeapEntry {
  std::uint64_t marginal;
  NodeId out_degree;
  NodeId node;

  bool operator<(const HeapEntry& other) const {
    if (marginal != other.marginal) return marginal < other.marginal;
    if (out_degree != other.out_degree) return out_degree < other.out_degree;
    return node < other.node;
  }
};

}  // namespace

CoverageGreedyResult RunCoverageGreedy(RrCollectionView collection,
                                       const CoverageGreedyOptions& options) {
  SUBSIM_CHECK(!options.tie_break_by_out_degree || options.graph != nullptr,
               "tie_break_by_out_degree requires options.graph");

  const NodeId n = collection.num_graph_nodes();
  const std::size_t num_sets = collection.num_sets();
  const std::uint32_t k =
      std::min<std::uint64_t>(options.k, static_cast<std::uint64_t>(n));

  CoverageGreedyResult result;

  // Which RR sets participate. Excluded sets (sentinel hits) are treated as
  // pre-covered so they never contribute to marginals.
  std::vector<std::uint8_t> covered(num_sets, 0);
  std::uint64_t considered = num_sets;
  if (options.exclude_sentinel_hit_sets) {
    for (std::size_t id = 0; id < num_sets; ++id) {
      if (collection.HitSentinel(static_cast<RrId>(id))) {
        covered[id] = 1;
        --considered;
      }
    }
  }
  result.considered_sets = considered;

  // Initial singleton coverages; also feeds the exact i = 0 term of Λ^u.
  std::vector<std::uint64_t> initial_cov(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    std::uint64_t c = 0;
    for (RrId id : collection.SetsContaining(v)) {
      if (!covered[id]) {
        ++c;
      }
    }
    initial_cov[v] = c;
  }
  {
    const std::uint32_t top_count =
        options.singleton_top_count > 0 ? options.singleton_top_count
                                        : options.k;
    std::vector<std::uint64_t> top(initial_cov);
    if (top.size() > top_count) {
      std::nth_element(top.begin(), top.begin() + top_count, top.end(),
                       std::greater<>());
      top.resize(top_count);
    }
    result.top_k_singleton_sum = 0;
    for (std::uint64_t c : top) {
      result.top_k_singleton_sum += c;
    }
  }

  auto out_degree = [&](NodeId v) -> NodeId {
    return options.tie_break_by_out_degree ? options.graph->OutDegree(v)
                                           : NodeId{0};
  };

  std::vector<std::uint8_t> selected(n, 0);
  for (NodeId v : options.excluded_nodes) {
    SUBSIM_CHECK(v < n, "excluded node out of range");
    selected[v] = 1;
  }

  std::priority_queue<HeapEntry> heap;
  for (NodeId v = 0; v < n; ++v) {
    if (!selected[v]) {
      heap.push(HeapEntry{initial_cov[v], out_degree(v), v});
    }
  }
  std::uint64_t total = 0;
  result.seeds.reserve(k);
  result.gains.reserve(k);
  result.coverage_prefix.reserve(k);

  while (result.seeds.size() < k && !heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    if (selected[top.node]) {
      continue;
    }
    // Refresh the marginal: count currently-uncovered sets containing it.
    std::uint64_t fresh = 0;
    for (RrId id : collection.SetsContaining(top.node)) {
      if (!covered[id]) {
        ++fresh;
      }
    }
    if (fresh != top.marginal) {
      SUBSIM_DCHECK(fresh < top.marginal, "marginal grew — index corrupt");
      top.marginal = fresh;
      heap.push(top);
      continue;
    }
    // The key is fresh and was the heap maximum, so it dominates every
    // remaining stale key, hence every fresh key: an exact argmax under
    // (marginal, out-degree, id).
    selected[top.node] = 1;
    for (RrId id : collection.SetsContaining(top.node)) {
      if (!covered[id]) {
        covered[id] = 1;
      }
    }
    total += top.marginal;
    result.seeds.push_back(top.node);
    result.gains.push_back(top.marginal);
    result.coverage_prefix.push_back(total);
  }

  // If the graph has fewer nodes than k we may exit early; that is fine —
  // callers treat seeds.size() as the effective k.
  return result;
}

std::uint64_t ComputeCoverage(RrCollectionView collection,
                              std::span<const NodeId> seeds) {
  std::vector<std::uint8_t> covered(collection.num_sets(), 0);
  std::uint64_t total = 0;
  for (NodeId v : seeds) {
    for (RrId id : collection.SetsContaining(v)) {
      if (!covered[id]) {
        covered[id] = 1;
        ++total;
      }
    }
  }
  return total;
}

}  // namespace subsim
