#include "subsim/coverage/max_coverage.h"

#include <algorithm>
#include <queue>

#include "subsim/coverage/hll_sketch.h"
#include "subsim/obs/metrics.h"
#include "subsim/util/check.h"

namespace subsim {

namespace {

/// Lazy-heap entry. Ordering is lexicographic on
/// (marginal, out_degree, node) so Algorithm 6's tie-break is part of the
/// priority; with tie-break disabled out_degree is fixed to 0 and ties fall
/// through to the node id (descending id pops first; any argmax is valid
/// for Algorithm 1, the id merely makes runs deterministic).
struct HeapEntry {
  std::uint64_t marginal;
  NodeId out_degree;
  NodeId node;

  bool operator<(const HeapEntry& other) const {
    if (marginal != other.marginal) return marginal < other.marginal;
    if (out_degree != other.out_degree) return out_degree < other.out_degree;
    return node < other.node;
  }
};

/// Approx-mode heap entry: same shape, estimated (double) key.
struct ApproxHeapEntry {
  double estimate;
  NodeId out_degree;
  NodeId node;

  bool operator<(const ApproxHeapEntry& other) const {
    if (estimate != other.estimate) return estimate < other.estimate;
    if (out_degree != other.out_degree) return out_degree < other.out_degree;
    return node < other.node;
  }
};

/// How many standard errors of headroom a sketch estimate gets before the
/// loop trusts it as an upper bound on a marginal. 3σ keeps the chance of
/// a violated bound (the only way approx selection can differ from exact
/// greedy) negligible per estimate while still discharging clearly
/// dominated candidates without an exact recount.
constexpr double kHllMarginSigmas = 3.0;

/// Everything both selection loops share.
struct GreedyState {
  const RrCollectionView* collection;
  const CoverageGreedyOptions* options;
  std::vector<std::uint8_t> covered;
  std::vector<std::uint8_t> selected;
  std::vector<std::uint64_t> initial_cov;
  std::uint32_t k = 0;
};

/// Exact marginal of `v`: currently-uncovered sets containing it.
std::uint64_t ExactMarginal(const GreedyState& state, NodeId v) {
  std::uint64_t fresh = 0;
  for (RrId id : state.collection->SetsContaining(v)) {
    if (!state.covered[id]) {
      ++fresh;
    }
  }
  return fresh;
}

/// Commits `v` as the next seed: marks its sets covered and appends the
/// (exact) gain to the result.
void SelectSeed(GreedyState* state, NodeId v, std::uint64_t exact_gain,
                CoverageGreedyResult* result) {
  state->selected[v] = 1;
  for (RrId id : state->collection->SetsContaining(v)) {
    state->covered[id] = 1;
  }
  const std::uint64_t total =
      (result->coverage_prefix.empty() ? 0 : result->coverage_prefix.back()) +
      exact_gain;
  result->seeds.push_back(v);
  result->gains.push_back(exact_gain);
  result->coverage_prefix.push_back(total);
}

void RunExactLoop(GreedyState* state, CoverageGreedyResult* result) {
  const NodeId n = state->collection->num_graph_nodes();
  const CoverageGreedyOptions& options = *state->options;
  auto out_degree = [&](NodeId v) -> NodeId {
    return options.tie_break_by_out_degree ? options.graph->OutDegree(v)
                                           : NodeId{0};
  };

  std::priority_queue<HeapEntry> heap;
  for (NodeId v = 0; v < n; ++v) {
    if (!state->selected[v]) {
      heap.push(HeapEntry{state->initial_cov[v], out_degree(v), v});
    }
  }

  while (result->seeds.size() < state->k && !heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    if (state->selected[top.node]) {
      continue;
    }
    // Refresh the marginal: count currently-uncovered sets containing it.
    const std::uint64_t fresh = ExactMarginal(*state, top.node);
    if (fresh != top.marginal) {
      SUBSIM_DCHECK(fresh < top.marginal, "marginal grew — index corrupt");
      top.marginal = fresh;
      heap.push(top);
      continue;
    }
    // The key is fresh and was the heap maximum, so it dominates every
    // remaining stale key, hence every fresh key: an exact argmax under
    // (marginal, out-degree, id).
    SelectSeed(state, top.node, top.marginal, result);
  }
}

/// Sketch-guided selection (`CoverageGreedyOptions::approx_coverage`).
///
/// CELF with sketch-tightened upper bounds. Every heap key is an upper
/// bound on the node's exact marginal: initially its exact singleton
/// coverage, thereafter min(previous bound, est(|C ∪ H(v)|) − |C| + 3σ)
/// where |C| is the exact covered count (maintained anyway for committed
/// gains) and the union estimate is one O(m) register scan, independent
/// of how long the candidate's index list is. A popped node whose bound
/// is dominated by the runner-up's is pushed back without touching the
/// inverted index — that is where the sketches earn their keep. A node
/// that survives the bound test is recounted exactly and commits only if
/// its exact (marginal, out-degree, id) key still dominates the heap of
/// upper bounds — so the selected sequence matches exact greedy unless a
/// 3σ error bar is actually violated. When the bars cannot separate
/// contenders the loop degrades gracefully into exact CELF (the extra
/// recounts are what `coverage.hll_refinements` counts).
void RunApproxLoop(GreedyState* state, CoverageGreedyResult* result) {
  const NodeId n = state->collection->num_graph_nodes();
  const RrCollectionView& collection = *state->collection;
  const CoverageGreedyOptions& options = *state->options;
  auto out_degree = [&](NodeId v) -> NodeId {
    return options.tie_break_by_out_degree ? options.graph->OutDegree(v)
                                           : NodeId{0};
  };

  const std::uint32_t precision =
      std::clamp<std::uint32_t>(options.hll_precision, 4, 16);
  const std::size_t m = HllNumRegisters(precision);
  const double rel_err = HllRelativeStdError(precision);

  // Per-candidate sketches over the considered RR ids (pre-covered ids —
  // sentinel exclusions — are left out so estimates live in the same
  // universe the exact counters do), plus the covered-union sketch.
  std::vector<std::uint8_t> bank(static_cast<std::size_t>(n) * m, 0);
  std::vector<std::uint8_t> covered_sketch(m, 0);
  auto sketch_of = [&](NodeId v) {
    return std::span<std::uint8_t>(bank.data() +
                                       static_cast<std::size_t>(v) * m,
                                   m);
  };
  for (NodeId v = 0; v < n; ++v) {
    const std::span<std::uint8_t> sketch = sketch_of(v);
    for (RrId id : collection.SetsContaining(v)) {
      if (!state->covered[id]) {
        HllObserve(sketch, precision, id);
      }
    }
  }

  MetricsRegistry::CounterHandle refinements;
  if (options.metrics != nullptr) {
    options.metrics->Gauge("coverage.hll_bytes")
        .Set(static_cast<double>(bank.size() + covered_sketch.size()));
    refinements = options.metrics->Counter("coverage.hll_refinements");
  }

  std::priority_queue<ApproxHeapEntry> heap;
  for (NodeId v = 0; v < n; ++v) {
    if (!state->selected[v]) {
      heap.push(ApproxHeapEntry{static_cast<double>(state->initial_cov[v]),
                                out_degree(v), v});
    }
  }

  std::uint64_t covered_exact = 0;  // exact |C|: sum of committed gains
  const auto select = [&](NodeId v, std::uint64_t exact_gain) {
    SelectSeed(state, v, exact_gain, result);
    covered_exact += exact_gain;
    HllMerge(covered_sketch, sketch_of(v));
  };

  while (result->seeds.size() < state->k && !heap.empty()) {
    ApproxHeapEntry top = heap.top();
    heap.pop();
    if (state->selected[top.node]) {
      continue;
    }
    if (heap.empty()) {
      select(top.node, ExactMarginal(*state, top.node));
      continue;
    }
    const ApproxHeapEntry& next = heap.top();
    const double union_estimate =
        HllEstimateUnion(covered_sketch, sketch_of(top.node));
    // The union estimate carries the sketch noise; the covered count is
    // exact, so the marginal's error bar is the union term's alone.
    const double margin = kHllMarginSigmas * rel_err * union_estimate;
    const double bound = std::min(
        top.estimate,
        std::max(0.0, union_estimate - static_cast<double>(covered_exact)) +
            margin);
    if (ApproxHeapEntry{bound, top.out_degree, top.node} < next) {
      // Dominated already at the bound level: push back without ever
      // touching the inverted index. The min() keeps bounds monotone.
      top.estimate = bound;
      heap.push(top);
      continue;
    }
    const std::uint64_t exact = ExactMarginal(*state, top.node);
    const ApproxHeapEntry exact_entry{static_cast<double>(exact),
                                      top.out_degree, top.node};
    if (!(exact_entry < next)) {
      // The exact key dominates every remaining upper bound, hence every
      // remaining exact marginal: an argmax under (marginal, out-degree,
      // id), exactly as the exact loop would have picked.
      select(top.node, exact);
    } else {
      // The error bar could not separate this contender from the heap;
      // the recount was the price of refinement. Its exact value is the
      // tightest possible bound — re-queue under it.
      refinements.Increment();
      heap.push(exact_entry);
    }
  }
}

}  // namespace

CoverageGreedyResult RunCoverageGreedy(RrCollectionView collection,
                                       const CoverageGreedyOptions& options) {
  SUBSIM_CHECK(!options.tie_break_by_out_degree || options.graph != nullptr,
               "tie_break_by_out_degree requires options.graph");

  const NodeId n = collection.num_graph_nodes();
  const std::size_t num_sets = collection.num_sets();
  const std::uint32_t k =
      std::min<std::uint64_t>(options.k, static_cast<std::uint64_t>(n));

  CoverageGreedyResult result;

  GreedyState state;
  state.collection = &collection;
  state.options = &options;
  state.k = k;

  // Which RR sets participate. Excluded sets (sentinel hits) are treated as
  // pre-covered so they never contribute to marginals.
  state.covered.assign(num_sets, 0);
  std::uint64_t considered = num_sets;
  if (options.exclude_sentinel_hit_sets) {
    for (std::size_t id = 0; id < num_sets; ++id) {
      if (collection.HitSentinel(static_cast<RrId>(id))) {
        state.covered[id] = 1;
        --considered;
      }
    }
  }
  result.considered_sets = considered;

  // Initial singleton coverages; also feeds the exact i = 0 term of Λ^u.
  state.initial_cov.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    state.initial_cov[v] = ExactMarginal(state, v);
  }
  {
    const std::uint32_t top_count =
        options.singleton_top_count > 0 ? options.singleton_top_count
                                        : options.k;
    std::vector<std::uint64_t> top(state.initial_cov);
    if (top.size() > top_count) {
      std::nth_element(top.begin(), top.begin() + top_count, top.end(),
                       std::greater<>());
      top.resize(top_count);
    }
    result.top_k_singleton_sum = 0;
    for (std::uint64_t c : top) {
      result.top_k_singleton_sum += c;
    }
  }

  state.selected.assign(n, 0);
  for (NodeId v : options.excluded_nodes) {
    SUBSIM_CHECK(v < n, "excluded node out of range");
    state.selected[v] = 1;
  }

  result.seeds.reserve(k);
  result.gains.reserve(k);
  result.coverage_prefix.reserve(k);

  if (options.approx_coverage) {
    RunApproxLoop(&state, &result);
  } else {
    RunExactLoop(&state, &result);
  }

  // If the graph has fewer nodes than k we may exit early; that is fine —
  // callers treat seeds.size() as the effective k.
  return result;
}

std::uint64_t ComputeCoverage(RrCollectionView collection,
                              std::span<const NodeId> seeds) {
  std::vector<std::uint8_t> covered(collection.num_sets(), 0);
  std::uint64_t total = 0;
  for (NodeId v : seeds) {
    for (RrId id : collection.SetsContaining(v)) {
      if (!covered[id]) {
        covered[id] = 1;
        ++total;
      }
    }
  }
  return total;
}

}  // namespace subsim
