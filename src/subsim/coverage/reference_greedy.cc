#include "subsim/coverage/reference_greedy.h"

#include <algorithm>

#include "subsim/util/check.h"

namespace subsim {

CoverageGreedyResult RunReferenceCoverageGreedy(
    const RrCollection& collection, const CoverageGreedyOptions& options) {
  SUBSIM_CHECK(!options.tie_break_by_out_degree || options.graph != nullptr,
               "tie_break_by_out_degree requires options.graph");

  const NodeId n = collection.num_graph_nodes();
  const std::size_t num_sets = collection.num_sets();
  const std::uint32_t k =
      std::min<std::uint64_t>(options.k, static_cast<std::uint64_t>(n));

  CoverageGreedyResult result;

  std::vector<std::uint8_t> covered(num_sets, 0);
  std::uint64_t considered = num_sets;
  if (options.exclude_sentinel_hit_sets) {
    for (std::size_t id = 0; id < num_sets; ++id) {
      if (collection.HitSentinel(static_cast<RrId>(id))) {
        covered[id] = 1;
        --considered;
      }
    }
  }
  result.considered_sets = considered;

  std::vector<std::uint8_t> selected(n, 0);
  for (NodeId v : options.excluded_nodes) {
    SUBSIM_CHECK(v < n, "excluded node out of range");
    selected[v] = 1;
  }

  auto marginal = [&](NodeId v) {
    std::uint64_t count = 0;
    for (RrId id : collection.SetsContaining(v)) {
      count += covered[id] ? 0 : 1;
    }
    return count;
  };
  auto out_degree = [&](NodeId v) -> NodeId {
    return options.tie_break_by_out_degree ? options.graph->OutDegree(v)
                                           : NodeId{0};
  };

  // Exact top-`singleton_top_count` singleton sum, as in the fast version.
  {
    const std::uint32_t top_count =
        options.singleton_top_count > 0 ? options.singleton_top_count
                                        : options.k;
    std::vector<std::uint64_t> initial;
    initial.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      initial.push_back(marginal(v));
    }
    if (initial.size() > top_count) {
      std::nth_element(initial.begin(), initial.begin() + top_count,
                       initial.end(), std::greater<>());
      initial.resize(top_count);
    }
    result.top_k_singleton_sum = 0;
    for (std::uint64_t c : initial) {
      result.top_k_singleton_sum += c;
    }
  }

  std::uint64_t total = 0;
  std::size_t selectable = 0;
  for (NodeId v = 0; v < n; ++v) {
    selectable += selected[v] ? 0 : 1;
  }
  const std::size_t steps = std::min<std::size_t>(k, selectable);

  for (std::size_t step = 0; step < steps; ++step) {
    NodeId best = kInvalidNode;
    std::uint64_t best_marginal = 0;
    NodeId best_degree = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (selected[v]) {
        continue;
      }
      const std::uint64_t m = marginal(v);
      const NodeId d = out_degree(v);
      // Same lexicographic (marginal, out_degree, id) order as the CELF
      // heap; the heap pops the largest id among full ties, so prefer the
      // larger id here as well.
      if (best == kInvalidNode || m > best_marginal ||
          (m == best_marginal &&
           (d > best_degree || (d == best_degree && v > best)))) {
        best = v;
        best_marginal = m;
        best_degree = d;
      }
    }
    SUBSIM_CHECK(best != kInvalidNode, "no selectable node left");
    selected[best] = 1;
    for (RrId id : collection.SetsContaining(best)) {
      covered[id] = 1;
    }
    total += best_marginal;
    result.seeds.push_back(best);
    result.gains.push_back(best_marginal);
    result.coverage_prefix.push_back(total);
  }
  return result;
}

}  // namespace subsim
