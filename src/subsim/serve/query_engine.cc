#include "subsim/serve/query_engine.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "subsim/algo/registry.h"
#include "subsim/obs/obs_json.h"
#include "subsim/obs/phase_tracer.h"
#include "subsim/util/mutex.h"
#include "subsim/util/thread_annotations.h"
#include "subsim/util/threading.h"

namespace subsim {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

Deadline DeadlineFromQuery(const SelectSeedsQuery& query) {
  return query.deadline_ms > 0
             ? Deadline::AfterMillis(
                   static_cast<std::int64_t>(query.deadline_ms))
             : Deadline();
}

}  // namespace

struct QueryEngine::Impl {
  struct Job {
    std::uint64_t id = 0;
    SelectSeedsQuery query;
    std::promise<QueryResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
    Deadline deadline;
  };

  explicit Impl(QueryEngine* engine, unsigned num_workers) : engine(engine) {
    num_workers = ResolveNumThreads(num_workers);
    workers.reserve(num_workers);
    for (unsigned i = 0; i < num_workers; ++i) {
      workers.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~Impl() {
    {
      const MutexLock lock(mu);
      stopping = true;
    }
    cv.NotifyAll();
    for (std::thread& worker : workers) {
      worker.join();
    }
    // Workers drain the queue before exiting, so this is normally empty.
    // If anything is left (it should not be), fail the promises explicitly
    // rather than let their destruction raise broken_promise on waiters.
    const MutexLock lock(mu);
    for (Job& job : queue) {
      job.promise.set_value(Rejected(job, "query engine shut down"));
    }
    queue.clear();
  }

  static QueryResponse Rejected(const Job& job, std::string why) {
    QueryResponse response;
    response.query_id = job.id;
    response.query = job.query;
    response.status = Status::Unavailable(std::move(why));
    return response;
  }

  void WorkerLoop() SUBSIM_EXCLUDES(mu) {
    for (;;) {
      Job job;
      {
        const MutexLock lock(mu);
        // Predicate is inlined (not a wait() lambda) so the guarded reads
        // happen where the analysis can prove the lock is held.
        while (!stopping && queue.empty()) {
          cv.Wait(mu);
        }
        if (queue.empty()) {
          return;  // stopping and drained
        }
        job = std::move(queue.front());
        queue.pop_front();
      }
      QueryResponse response =
          engine->ExecuteInternal(job.query, job.id,
                                  SecondsSince(job.enqueued), job.deadline);
      job.promise.set_value(std::move(response));
    }
  }

  // ---- Coalescer ----------------------------------------------------
  //
  // One in-flight record per SketchKey currently executing against the
  // shared store. A new cache-eligible query whose k is dominated by the
  // in-flight maximum subscribes: it waits (bounded by its own deadline)
  // for the current fill to finish, then evaluates on the warmed store.
  // A query with a larger k joins as a co-leader instead — it is the one
  // extending the fill, so blocking it would help nobody. `coalesce_mu`
  // is a leaf lock: nothing else is acquired while it is held, and the
  // leader it waits on is by construction already past its own Enter call
  // and executing, so the wait cannot cycle.

  struct InFlight {
    std::uint32_t max_k = 0;
    int count = 0;
  };

  /// Returns true when the query waited behind a compatible leader.
  bool EnterFill(const std::string& key, std::uint32_t k,
                 const Deadline& deadline) SUBSIM_EXCLUDES(coalesce_mu) {
    const MutexLock lock(coalesce_mu);
    bool waited = false;
    for (;;) {
      const auto it = inflight.find(key);
      if (it == inflight.end()) {
        inflight.emplace(key, InFlight{k, 1});
        return waited;
      }
      if (k > it->second.max_k) {
        it->second.max_k = k;
        ++it->second.count;
        return waited;
      }
      if (deadline.is_set()) {
        const double remaining = deadline.RemainingSeconds();
        if (remaining <= 0.0) {
          // Budget gone: stop waiting and run now (the run itself will
          // degrade at its first round boundary).
          ++it->second.count;
          return waited;
        }
        waited = true;
        // Timeout or notify, the loop re-checks the table either way.
        (void)coalesce_cv.WaitFor(
            coalesce_mu, std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::duration<double>(remaining)));
      } else {
        waited = true;
        coalesce_cv.Wait(coalesce_mu);
      }
    }
  }

  void LeaveFill(const std::string& key) SUBSIM_EXCLUDES(coalesce_mu) {
    {
      const MutexLock lock(coalesce_mu);
      const auto it = inflight.find(key);
      if (it != inflight.end() && --it->second.count == 0) {
        inflight.erase(it);
      }
    }
    coalesce_cv.NotifyAll();
  }

  QueryEngine* engine;
  Mutex mu;
  CondVar cv;
  std::deque<Job> queue SUBSIM_GUARDED_BY(mu);
  bool stopping SUBSIM_GUARDED_BY(mu) = false;
  Mutex coalesce_mu;
  CondVar coalesce_cv;
  std::map<std::string, InFlight> inflight SUBSIM_GUARDED_BY(coalesce_mu);
  std::atomic<std::uint64_t> next_id{1};
  std::vector<std::thread> workers;
};

QueryEngine::QueryEngine(GraphRegistry* registry,
                         const QueryEngineOptions& options)
    : registry_(registry),
      cache_(options.cache),
      num_threads_(options.num_threads),
      impl_(std::make_unique<Impl>(this, options.num_workers)) {
  // Register the serve-level instruments up front so /metricsz exposes
  // every golden key (docs/serving.md) from the first scrape, before any
  // traffic arrives.
  metrics_.Counter("serve.queries");
  metrics_.Counter("serve.errors");
  metrics_.Counter("serve.shed");
  metrics_.Counter("serve.coalesced");
  metrics_.Counter("serve.deadline_hits");
  metrics_.Histogram("serve.queue_us");
  metrics_.Histogram("serve.exec_us");
  metrics_.Counter("update.batches");
  metrics_.Counter("update.sets_repaired");
  metrics_.Counter("update.sets_kept");
  metrics_.Histogram("update.repair_us");
}

QueryEngine::~QueryEngine() = default;

std::future<QueryResponse> QueryEngine::Submit(SelectSeedsQuery query) {
  Impl::Job job;
  job.id = impl_->next_id.fetch_add(1, std::memory_order_relaxed);
  job.query = std::move(query);
  job.enqueued = std::chrono::steady_clock::now();
  job.deadline = DeadlineFromQuery(job.query);
  std::future<QueryResponse> future = job.promise.get_future();
  bool rejected = false;
  {
    const MutexLock lock(impl_->mu);
    if (impl_->stopping) {
      // Racing the destructor: resolve the promise now — after `stopping`
      // flips, no worker is guaranteed to look at the queue again.
      rejected = true;
    } else {
      impl_->queue.push_back(std::move(job));
    }
  }
  if (rejected) {
    job.promise.set_value(
        Impl::Rejected(job, "query engine is shutting down"));
    return future;
  }
  impl_->cv.NotifyOne();
  return future;
}

QueryResponse QueryEngine::Execute(const SelectSeedsQuery& query) {
  return ExecuteInternal(
      query, impl_->next_id.fetch_add(1, std::memory_order_relaxed),
      /*queue_seconds=*/0.0, DeadlineFromQuery(query));
}

QueryResponse QueryEngine::Execute(const SelectSeedsQuery& query,
                                   const ExecContext& ctx) {
  return ExecuteInternal(
      query, impl_->next_id.fetch_add(1, std::memory_order_relaxed),
      ctx.queue_seconds,
      ctx.deadline.is_set() ? ctx.deadline : DeadlineFromQuery(query));
}

std::size_t QueryEngine::InvalidateGraph(const std::string& name) {
  return cache_.EraseGraph(name);
}

Result<QueryEngine::GraphUpdateOutcome> QueryEngine::ApplyGraphUpdates(
    const std::string& name, const UpdateBatch& batch) {
  // One update at a time so each repair pass starts from the cache state
  // the previous update left. Queries never take this lock — they keep
  // executing (and even populating old-version entries) throughout.
  const MutexLock update_lock(update_mu_);
  Result<GraphRegistry::UpdateResult> updated =
      registry_->ApplyUpdates(name, batch);
  if (!updated.ok()) {
    return updated.status();
  }

  GraphUpdateOutcome outcome;
  outcome.version = updated->snapshot.version;
  outcome.previous_version = updated->previous.version;
  outcome.num_edges = updated->snapshot.graph->num_edges();

  // Repair every resident entry of the retiring version onto the new one.
  // Runs outside the cache lock — lookups stay unblocked; a query racing
  // this loop either finds the old-version entry (fine: its key pins the
  // old snapshot) or misses on the new version and fills cold.
  PhaseScope repair_span(&tracer_, "serve.update");
  const std::vector<std::pair<SketchKey, std::shared_ptr<RrSketchCache::Entry>>>
      old_entries =
          cache_.EntriesForGraph(name, updated->previous.version);
  for (const auto& [old_key, old_entry] : old_entries) {
    SampleStore::Options store_options;
    store_options.num_threads = num_threads_;
    store_options.obs = ObsContext{&metrics_, &tracer_};
    SampleStore::RepairStats repair_stats;
    Result<std::unique_ptr<SampleStore>> repaired =
        SampleStore::CreateRepaired(*updated->snapshot.graph,
                                    *old_entry->store, updated->dirty_nodes,
                                    store_options, &repair_stats);
    if (!repaired.ok()) {
      // The mutated graph is no longer valid for this entry's generator
      // kind (e.g. LT weight sums); drop it and let queries fail or fill
      // fresh against the new snapshot.
      ++outcome.entries_dropped;
      continue;
    }
    auto entry = std::make_shared<RrSketchCache::Entry>();
    entry->graph = updated->snapshot.graph;
    entry->store = std::move(*repaired);
    SketchKey key = old_key;
    key.graph_version = updated->snapshot.version;
    cache_.Put(key, std::move(entry));
    ++outcome.entries_repaired;
    outcome.sets_repaired += repair_stats.sets_repaired;
    outcome.sets_kept += repair_stats.sets_kept;
  }
  // The retiring version's keys can never be looked up again; entries not
  // repaired above (raced-in after the walk, or dropped) are dead weight.
  cache_.EraseGraphVersionsBelow(name, updated->snapshot.version);
  outcome.repair_seconds = repair_span.ElapsedSeconds();
  repair_span.Close();

  metrics_.Counter("update.batches").Increment();
  metrics_.Counter("update.sets_repaired").Add(outcome.sets_repaired);
  metrics_.Counter("update.sets_kept").Add(outcome.sets_kept);
  metrics_.Histogram("update.repair_us")
      .Observe(static_cast<std::uint64_t>(outcome.repair_seconds * 1e6));
  cache_.EnforceBudget();
  return outcome;
}

Result<std::size_t> QueryEngine::RemoveGraph(const std::string& name) {
  if (!registry_->Erase(name)) {
    return Status::NotFound("no graph registered as '" + name + "'");
  }
  return cache_.EraseGraph(name);
}

std::string QueryEngine::StatsJson() const {
  std::string out = "{";
  out += "\"cache_entries\":" + std::to_string(cache_.num_entries());
  out += ",\"cache_hits\":" + std::to_string(cache_.hits());
  out += ",\"cache_misses\":" + std::to_string(cache_.misses());
  out += ",\"cache_lost_races\":" + std::to_string(cache_.lost_races());
  out += ",\"cache_evictions\":" + std::to_string(cache_.evictions());
  out += ",\"cache_bytes\":" + std::to_string(cache_.ApproxMemoryBytes());
  out += ",";
  out += ObsJsonFields(metrics_.Snapshot(), &tracer_);
  out += "}";
  return out;
}

QueryResponse QueryEngine::ExecuteInternal(const SelectSeedsQuery& query,
                                           std::uint64_t query_id,
                                           double queue_seconds,
                                           const Deadline& deadline) {
  QueryResponse response;
  response.query_id = query_id;
  response.query = query;
  response.stats.queue_seconds = queue_seconds;
  metrics_.Histogram("serve.queue_us")
      .Observe(static_cast<std::uint64_t>(queue_seconds * 1e6));
  PhaseScope exec_span(&tracer_, "serve.exec");

  const auto finish = [&](Status status) -> QueryResponse {
    response.stats.exec_seconds = exec_span.ElapsedSeconds();
    exec_span.Close();
    metrics_.Histogram("serve.exec_us")
        .Observe(static_cast<std::uint64_t>(response.stats.exec_seconds * 1e6));
    metrics_.Counter("serve.queries").Increment();
    if (!status.ok()) {
      metrics_.Counter("serve.errors").Increment();
    }
    if (response.result.deadline_hit) {
      metrics_.Counter("serve.deadline_hits").Increment();
    }
    metrics_.Gauge("serve.cache_entries")
        .Set(static_cast<double>(cache_.num_entries()));
    metrics_.Gauge("serve.cache_bytes")
        .Set(static_cast<double>(cache_.ApproxMemoryBytes()));
    response.status = std::move(status);
    return std::move(response);
  };

  // A budget fully consumed before execution starts is shed here — running
  // anyway would only make the caller's overload worse. Budgets that
  // expire mid-run degrade at a round boundary instead (ImOptions).
  if (deadline.is_set() && deadline.Expired()) {
    metrics_.Counter("serve.shed").Increment();
    return finish(Status::DeadlineExceeded(
        "deadline expired before execution started"));
  }

  Result<GraphSnapshot> snapshot = registry_->GetSnapshot(query.graph);
  if (!snapshot.ok()) {
    return finish(snapshot.status());
  }
  Result<std::unique_ptr<ImAlgorithm>> algorithm =
      MakeImAlgorithm(query.algo);
  if (!algorithm.ok()) {
    return finish(algorithm.status());
  }
  ImOptions options = query.ToImOptions();
  // Every query — cached or fresh — records into the engine registry.
  options.obs = ObsContext{&metrics_, &tracer_};
  // Generation threads are an engine-level knob: results are invariant to
  // the thread count, so applying it here cannot change any response.
  options.num_threads = num_threads_;
  options.deadline = deadline;

  if (!(*algorithm)->SupportsSampleReuse()) {
    // Cache-incompatible (HIST et al.): fresh, private sampling.
    Result<ImResult> result = (*algorithm)->Run(*snapshot->graph, options);
    if (!result.ok()) {
      return finish(result.status());
    }
    response.result = std::move(*result);
    response.stats.rr_sets_generated = response.result.num_rr_sets;
    return finish(Status::Ok());
  }

  response.stats.cache_eligible = true;
  SketchKey key;
  key.graph = query.graph;
  // The version makes stale hits structurally impossible: replacing or
  // updating the name publishes a new version, so old entries are simply
  // never looked up again.
  key.graph_version = snapshot->version;
  key.algo = query.algo;
  key.generator = query.generator;
  key.rng_seed = query.rng_seed;
  // Raw and delta stores hold identical logical sets, but an entry's
  // encoding is fixed at creation — keying on it keeps each request's
  // byte-budget behavior what it asked for instead of transcoding.
  key.encoding = query.rr_encoding;
  Result<RrSketchCache::Lookup> lookup = cache_.GetOrCreate(
      key, snapshot->graph, [&](const Graph& target) {
        return (*algorithm)->MakeSampleStore(target, options);
      });
  if (!lookup.ok()) {
    return finish(lookup.status());
  }
  response.stats.cache_hit = lookup->hit;

  // Coalesce with any in-flight fill of the same key that dominates this
  // query's k; by the time EnterFill returns the store holds (at least)
  // the prefix this query needs, so evaluation is read-mostly.
  const std::string fill_key = key.ToString();
  if (impl_->EnterFill(fill_key, query.k, deadline)) {
    response.stats.coalesced = true;
    metrics_.Counter("serve.coalesced").Increment();
  }

  // Run against the entry's pinned snapshot (it may predate a registry
  // re-load; its sets were sampled on exactly that snapshot).
  const std::shared_ptr<RrSketchCache::Entry> entry = lookup->entry;
  const std::uint64_t generated_before = entry->store->total_generated();
  Result<ImResult> result =
      (*algorithm)->RunWithStore(*entry->graph, options, entry->store.get());
  impl_->LeaveFill(fill_key);
  if (!result.ok()) {
    return finish(result.status());
  }
  const std::uint64_t generated =
      entry->store->total_generated() - generated_before;
  response.result = std::move(*result);
  response.stats.rr_sets_generated = generated;
  response.stats.rr_sets_reused =
      response.result.num_rr_sets > generated
          ? response.result.num_rr_sets - generated
          : 0;
  cache_.EnforceBudget();
  return finish(Status::Ok());
}

}  // namespace subsim
