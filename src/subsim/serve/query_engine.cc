#include "subsim/serve/query_engine.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <utility>
#include <vector>

#include "subsim/algo/registry.h"
#include "subsim/obs/obs_json.h"
#include "subsim/obs/phase_tracer.h"
#include "subsim/util/mutex.h"
#include "subsim/util/thread_annotations.h"
#include "subsim/util/threading.h"

namespace subsim {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

struct QueryEngine::Impl {
  struct Job {
    std::uint64_t id = 0;
    SelectSeedsQuery query;
    std::promise<QueryResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  explicit Impl(QueryEngine* engine, unsigned num_workers) : engine(engine) {
    num_workers = ResolveNumThreads(num_workers);
    workers.reserve(num_workers);
    for (unsigned i = 0; i < num_workers; ++i) {
      workers.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~Impl() {
    {
      const MutexLock lock(mu);
      stopping = true;
    }
    cv.NotifyAll();
    for (std::thread& worker : workers) {
      worker.join();
    }
  }

  void WorkerLoop() SUBSIM_EXCLUDES(mu) {
    for (;;) {
      Job job;
      {
        const MutexLock lock(mu);
        // Predicate is inlined (not a wait() lambda) so the guarded reads
        // happen where the analysis can prove the lock is held.
        while (!stopping && queue.empty()) {
          cv.Wait(mu);
        }
        if (queue.empty()) {
          return;  // stopping and drained
        }
        job = std::move(queue.front());
        queue.pop_front();
      }
      QueryResponse response =
          engine->ExecuteInternal(job.query, job.id,
                                  SecondsSince(job.enqueued));
      job.promise.set_value(std::move(response));
    }
  }

  QueryEngine* engine;
  Mutex mu;
  CondVar cv;
  std::deque<Job> queue SUBSIM_GUARDED_BY(mu);
  bool stopping SUBSIM_GUARDED_BY(mu) = false;
  std::atomic<std::uint64_t> next_id{1};
  std::vector<std::thread> workers;
};

QueryEngine::QueryEngine(GraphRegistry* registry,
                         const QueryEngineOptions& options)
    : registry_(registry),
      cache_(options.cache),
      num_threads_(options.num_threads),
      impl_(std::make_unique<Impl>(this, options.num_workers)) {}

QueryEngine::~QueryEngine() = default;

std::future<QueryResponse> QueryEngine::Submit(SelectSeedsQuery query) {
  Impl::Job job;
  job.id = impl_->next_id.fetch_add(1, std::memory_order_relaxed);
  job.query = std::move(query);
  job.enqueued = std::chrono::steady_clock::now();
  std::future<QueryResponse> future = job.promise.get_future();
  {
    const MutexLock lock(impl_->mu);
    impl_->queue.push_back(std::move(job));
  }
  impl_->cv.NotifyOne();
  return future;
}

QueryResponse QueryEngine::Execute(const SelectSeedsQuery& query) {
  return ExecuteInternal(
      query, impl_->next_id.fetch_add(1, std::memory_order_relaxed),
      /*queue_seconds=*/0.0);
}

std::size_t QueryEngine::InvalidateGraph(const std::string& name) {
  return cache_.EraseGraph(name);
}

std::string QueryEngine::StatsJson() const {
  std::string out = "{";
  out += "\"cache_entries\":" + std::to_string(cache_.num_entries());
  out += ",\"cache_hits\":" + std::to_string(cache_.hits());
  out += ",\"cache_misses\":" + std::to_string(cache_.misses());
  out += ",\"cache_evictions\":" + std::to_string(cache_.evictions());
  out += ",\"cache_bytes\":" + std::to_string(cache_.ApproxMemoryBytes());
  out += ",";
  out += ObsJsonFields(metrics_.Snapshot(), &tracer_);
  out += "}";
  return out;
}

QueryResponse QueryEngine::ExecuteInternal(const SelectSeedsQuery& query,
                                           std::uint64_t query_id,
                                           double queue_seconds) {
  QueryResponse response;
  response.query_id = query_id;
  response.query = query;
  response.stats.queue_seconds = queue_seconds;
  metrics_.Histogram("serve.queue_us")
      .Observe(static_cast<std::uint64_t>(queue_seconds * 1e6));
  PhaseScope exec_span(&tracer_, "serve.exec");

  const auto finish = [&](Status status) -> QueryResponse {
    response.stats.exec_seconds = exec_span.ElapsedSeconds();
    exec_span.Close();
    metrics_.Histogram("serve.exec_us")
        .Observe(static_cast<std::uint64_t>(response.stats.exec_seconds * 1e6));
    metrics_.Counter("serve.queries").Increment();
    if (!status.ok()) {
      metrics_.Counter("serve.errors").Increment();
    }
    metrics_.Gauge("serve.cache_entries")
        .Set(static_cast<double>(cache_.num_entries()));
    metrics_.Gauge("serve.cache_bytes")
        .Set(static_cast<double>(cache_.ApproxMemoryBytes()));
    response.status = std::move(status);
    return std::move(response);
  };

  Result<std::shared_ptr<const Graph>> graph = registry_->Get(query.graph);
  if (!graph.ok()) {
    return finish(graph.status());
  }
  Result<std::unique_ptr<ImAlgorithm>> algorithm =
      MakeImAlgorithm(query.algo);
  if (!algorithm.ok()) {
    return finish(algorithm.status());
  }
  ImOptions options = query.ToImOptions();
  // Every query — cached or fresh — records into the engine registry.
  options.obs = ObsContext{&metrics_, &tracer_};
  // Generation threads are an engine-level knob: results are invariant to
  // the thread count, so applying it here cannot change any response.
  options.num_threads = num_threads_;

  if (!(*algorithm)->SupportsSampleReuse()) {
    // Cache-incompatible (HIST et al.): fresh, private sampling.
    Result<ImResult> result = (*algorithm)->Run(**graph, options);
    if (!result.ok()) {
      return finish(result.status());
    }
    response.result = std::move(*result);
    response.stats.rr_sets_generated = response.result.num_rr_sets;
    return finish(Status::Ok());
  }

  response.stats.cache_eligible = true;
  SketchKey key;
  key.graph = query.graph;
  key.algo = query.algo;
  key.generator = query.generator;
  key.rng_seed = query.rng_seed;
  Result<RrSketchCache::Lookup> lookup = cache_.GetOrCreate(
      key, *graph, [&](const Graph& target) {
        return (*algorithm)->MakeSampleStore(target, options);
      });
  if (!lookup.ok()) {
    return finish(lookup.status());
  }
  response.stats.cache_hit = lookup->hit;

  // Run against the entry's pinned snapshot (it may predate a registry
  // re-load; its sets were sampled on exactly that snapshot).
  const std::shared_ptr<RrSketchCache::Entry> entry = lookup->entry;
  const std::uint64_t generated_before = entry->store->total_generated();
  Result<ImResult> result =
      (*algorithm)->RunWithStore(*entry->graph, options, entry->store.get());
  if (!result.ok()) {
    return finish(result.status());
  }
  const std::uint64_t generated =
      entry->store->total_generated() - generated_before;
  response.result = std::move(*result);
  response.stats.rr_sets_generated = generated;
  response.stats.rr_sets_reused =
      response.result.num_rr_sets > generated
          ? response.result.num_rr_sets - generated
          : 0;
  cache_.EnforceBudget();
  return finish(Status::Ok());
}

}  // namespace subsim
