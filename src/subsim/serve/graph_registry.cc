#include "subsim/serve/graph_registry.h"

#include <utility>

#include "subsim/graph/graph_builder.h"
#include "subsim/graph/graph_io.h"

namespace subsim {

Status GraphRegistry::LoadFromFile(const std::string& name,
                                   const std::string& path) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must be non-empty");
  }
  Result<EdgeList> list = ReadEdgeListText(path);
  if (!list.ok()) {
    return list.status();
  }
  Result<Graph> graph = BuildGraph(std::move(*list));
  if (!graph.ok()) {
    return graph.status();
  }
  return Register(name, std::move(*graph));
}

GraphSnapshot GraphRegistry::Publish(const std::string& name,
                                     std::shared_ptr<const Graph> graph) {
  const MutexLock lock(mu_);
  GraphSnapshot snapshot;
  snapshot.graph = std::move(graph);
  snapshot.version = ++next_version_;
  graphs_[name] = snapshot;
  return snapshot;
}

Status GraphRegistry::Register(const std::string& name, Graph graph) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must be non-empty");
  }
  Publish(name, std::make_shared<const Graph>(std::move(graph)));
  return Status::Ok();
}

Result<GraphRegistry::UpdateResult> GraphRegistry::ApplyUpdates(
    const std::string& name, const UpdateBatch& batch) {
  // One update at a time: each rebuild must start from the snapshot the
  // previous batch published, or concurrent batches would silently drop
  // each other's edits. Lookups never take this lock.
  const MutexLock update_lock(update_mu_);
  GraphSnapshot base;
  {
    const MutexLock lock(mu_);
    const auto it = graphs_.find(name);
    if (it == graphs_.end()) {
      return Status::NotFound("no graph registered as '" + name + "'");
    }
    base = it->second;
  }
  if (batch.expect_version != 0 && batch.expect_version != base.version) {
    return Status::FailedPrecondition(
        "version skew: graph '" + name + "' is at version " +
        std::to_string(base.version) + ", batch expected " +
        std::to_string(batch.expect_version));
  }
  // The rebuild is the expensive part; it runs outside `mu_` so concurrent
  // snapshot lookups proceed untouched. `update_mu_` guarantees `base` is
  // still current when we publish below.
  Result<EdgeUpdateResult> updated = ApplyEdgeUpdates(*base.graph, batch);
  if (!updated.ok()) {
    return updated.status();
  }
  UpdateResult result;
  result.snapshot = Publish(
      name, std::make_shared<const Graph>(std::move(updated->graph)));
  result.previous = std::move(base);
  result.dirty_nodes = std::move(updated->dirty_nodes);
  return result;
}

bool GraphRegistry::Erase(const std::string& name) {
  const MutexLock lock(mu_);
  return graphs_.erase(name) > 0;
}

Result<std::shared_ptr<const Graph>> GraphRegistry::Get(
    const std::string& name) const {
  const MutexLock lock(mu_);
  const auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("no graph registered as '" + name + "'");
  }
  return it->second.graph;
}

Result<GraphSnapshot> GraphRegistry::GetSnapshot(
    const std::string& name) const {
  const MutexLock lock(mu_);
  const auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("no graph registered as '" + name + "'");
  }
  return it->second;
}

bool GraphRegistry::Contains(const std::string& name) const {
  const MutexLock lock(mu_);
  return graphs_.count(name) > 0;
}

std::vector<std::string> GraphRegistry::Names() const {
  const MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& [name, snapshot] : graphs_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace subsim
