#include "subsim/serve/graph_registry.h"

#include <utility>

#include "subsim/graph/graph_builder.h"
#include "subsim/graph/graph_io.h"

namespace subsim {

Status GraphRegistry::LoadFromFile(const std::string& name,
                                   const std::string& path) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must be non-empty");
  }
  Result<EdgeList> list = ReadEdgeListText(path);
  if (!list.ok()) {
    return list.status();
  }
  Result<Graph> graph = BuildGraph(std::move(*list));
  if (!graph.ok()) {
    return graph.status();
  }
  return Register(name, std::move(*graph));
}

Status GraphRegistry::Register(const std::string& name, Graph graph) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must be non-empty");
  }
  auto snapshot = std::make_shared<const Graph>(std::move(graph));
  const MutexLock lock(mu_);
  graphs_[name] = std::move(snapshot);
  return Status::Ok();
}

Result<std::shared_ptr<const Graph>> GraphRegistry::Get(
    const std::string& name) const {
  const MutexLock lock(mu_);
  const auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("no graph registered as '" + name + "'");
  }
  return it->second;
}

bool GraphRegistry::Contains(const std::string& name) const {
  const MutexLock lock(mu_);
  return graphs_.count(name) > 0;
}

std::vector<std::string> GraphRegistry::Names() const {
  const MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& [name, graph] : graphs_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace subsim
