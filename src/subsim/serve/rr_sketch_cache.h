#ifndef SUBSIM_SERVE_RR_SKETCH_CACHE_H_
#define SUBSIM_SERVE_RR_SKETCH_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "subsim/graph/graph.h"
#include "subsim/rrset/generator_factory.h"
#include "subsim/rrset/sample_store.h"
#include "subsim/util/mutex.h"
#include "subsim/util/status.h"
#include "subsim/util/thread_annotations.h"

namespace subsim {

/// Identity of a reusable RR sketch. Two queries may share a `SampleStore`
/// only when all five coordinates agree:
///  - `graph`: the registry name whose snapshot the sets were sampled on;
///  - `graph_version`: the registry version of that snapshot. Versions are
///             never reused, so a key can only ever hit sets sampled on
///             exactly the topology the query resolved — re-registering or
///             updating a name changes the version and the old entries
///             simply stop being reachable (stale hits are structurally
///             impossible, not merely invalidated);
///  - `algo`:  the algorithm name, because each algorithm derives its rng
///             stream lineage differently (OPIM-C uses stream seeds 1/2
///             for R1/R2, IMM uses stream 1 alone) and mixing lineages
///             would break the cold-equivalence guarantee;
///  - `generator`: the RR-set generation strategy (vanilla / subsim / lt);
///  - `rng_seed`: the master seed the stream seeds derive from;
///  - `encoding`: the arena storage encoding. Raw and delta stores hold
///             the same logical sets (either serves any query exactly),
///             but a store's encoding is fixed at creation, so queries
///             asking for different encodings get distinct entries rather
///             than transcoding in place.
///
/// The generation thread count is deliberately *not* part of the key:
/// fills are thread-count invariant, so stores produced at any
/// `num_threads` are interchangeable. Likewise `approx_coverage` is an
/// evaluation knob — it never changes the stored bytes — so it is not in
/// the key either.
struct SketchKey {
  std::string graph;
  std::uint64_t graph_version = 0;
  std::string algo;
  GeneratorKind generator = GeneratorKind::kVanillaIc;
  std::uint64_t rng_seed = 1;
  RrEncoding encoding = RrEncoding::kRaw;

  friend bool operator==(const SketchKey& a, const SketchKey& b) {
    return a.graph == b.graph && a.graph_version == b.graph_version &&
           a.algo == b.algo && a.generator == b.generator &&
           a.rng_seed == b.rng_seed && a.encoding == b.encoding;
  }
  friend bool operator<(const SketchKey& a, const SketchKey& b) {
    return std::tie(a.graph, a.graph_version, a.algo, a.generator,
                    a.rng_seed, a.encoding) <
           std::tie(b.graph, b.graph_version, b.algo, b.generator,
                    b.rng_seed, b.encoding);
  }

  std::string ToString() const;
};

/// Thread-safe cache of extendable RR-set collections (`SampleStore`s),
/// keyed by `SketchKey`, with byte-budget LRU eviction.
///
/// Entries pair a store with the graph snapshot it was sampled on, so a
/// query always runs against the exact graph its reused sets came from even
/// if the registry has since re-loaded the name. Stores only ever hold
/// plain (never sentinel-truncated) RR sets — algorithms that truncate
/// (HIST) are structurally excluded because `SupportsSampleReuse()` is
/// false for them, so they never reach the cache.
///
/// Eviction removes least-recently-used entries until the sum of store
/// footprints fits `Options::max_bytes`. Eviction only drops the cache's
/// reference: queries still running against an evicted entry keep it alive
/// through their `shared_ptr` and finish normally.
class RrSketchCache {
 public:
  struct Options {
    /// Byte budget across all cached stores. 0 disables caching entirely
    /// (every lookup is a miss and nothing is retained).
    std::uint64_t max_bytes = 512ull << 20;
  };

  /// A cached store plus the graph snapshot it samples.
  struct Entry {
    std::shared_ptr<const Graph> graph;
    std::unique_ptr<SampleStore> store;
  };

  /// Builds the store for a key on a miss. Receives the graph snapshot the
  /// entry will pin.
  using StoreFactory =
      std::function<Result<std::unique_ptr<SampleStore>>(const Graph&)>;

  struct Lookup {
    std::shared_ptr<Entry> entry;
    /// True when the entry pre-existed this lookup (its sets came from
    /// earlier queries) — including the lost-race case, where this caller
    /// built a store but another lookup's insert won.
    bool hit = false;
  };

  RrSketchCache() : RrSketchCache(Options()) {}
  explicit RrSketchCache(const Options& options) : options_(options) {}
  RrSketchCache(const RrSketchCache&) = delete;
  RrSketchCache& operator=(const RrSketchCache&) = delete;

  /// Returns the entry for `key`, creating it via `factory` on a miss.
  /// Concurrent lookups of the same key serialize on the cache lock, so the
  /// factory runs at most once per residency.
  Result<Lookup> GetOrCreate(const SketchKey& key,
                             std::shared_ptr<const Graph> graph,
                             const StoreFactory& factory)
      SUBSIM_EXCLUDES(mu_);

  /// Inserts (or replaces) an entry under `key` without going through a
  /// factory — how repaired stores are published under a new graph version.
  /// A no-op when caching is disabled (`max_bytes == 0`).
  void Put(const SketchKey& key, std::shared_ptr<Entry> entry)
      SUBSIM_EXCLUDES(mu_);

  /// The resident entries whose key names (`graph`, `graph_version`) —
  /// what an incremental repair walks. Keys come back in map order
  /// (deterministic).
  std::vector<std::pair<SketchKey, std::shared_ptr<Entry>>> EntriesForGraph(
      const std::string& graph, std::uint64_t graph_version) const
      SUBSIM_EXCLUDES(mu_);

  /// Drops every entry whose key names `graph` — called when a registry
  /// name is removed outright. Returns the number dropped.
  std::size_t EraseGraph(const std::string& graph) SUBSIM_EXCLUDES(mu_);

  /// Drops every entry for `graph` with a version strictly below
  /// `graph_version` — the post-repair cleanup: entries the repair carried
  /// forward live under the new version, the old-version originals are
  /// unreachable (their version is retired) and only waste budget. Returns
  /// the number dropped.
  std::size_t EraseGraphVersionsBelow(const std::string& graph,
                                      std::uint64_t graph_version)
      SUBSIM_EXCLUDES(mu_);

  /// Evicts least-recently-used entries until within the byte budget.
  /// Called by the engine after queries (stores grow in place, so an entry
  /// can exceed the budget only after use). Cost: refreshes the cached
  /// footprint of entries touched since the last call (dirty flags), then
  /// one sorted pass over the survivors when over budget — no O(n) rescan
  /// per eviction.
  void EnforceBudget() SUBSIM_EXCLUDES(mu_);

  std::uint64_t hits() const SUBSIM_EXCLUDES(mu_);
  std::uint64_t misses() const SUBSIM_EXCLUDES(mu_);
  /// Cold misses that built a store only to find another lookup's insert
  /// won the race — the build was paid but wasted. Counted separately from
  /// `hits` so hit-rate gauges don't overstate cache effectiveness.
  std::uint64_t lost_races() const SUBSIM_EXCLUDES(mu_);
  std::uint64_t evictions() const SUBSIM_EXCLUDES(mu_);
  std::size_t num_entries() const SUBSIM_EXCLUDES(mu_);
  /// Sum of the cached stores' approximate footprints (exact recompute;
  /// stats path only — budget enforcement uses the running total).
  std::uint64_t ApproxMemoryBytes() const SUBSIM_EXCLUDES(mu_);

 private:
  struct Slot {
    std::shared_ptr<Entry> entry;
    std::uint64_t last_used = 0;
    /// Footprint as of the last refresh; `total_bytes_` is the sum of
    /// these over all slots.
    std::uint64_t bytes = 0;
    /// Set when the store may have grown since `bytes` was computed (every
    /// hit marks the slot — the query that took it will extend the store).
    bool dirty = false;
  };

  void AddSlotLocked(const SketchKey& key, std::shared_ptr<Entry> entry)
      SUBSIM_REQUIRES(mu_);
  std::size_t EraseIfLocked(
      const std::function<bool(const SketchKey&)>& predicate)
      SUBSIM_REQUIRES(mu_);

  Options options_;
  /// Acquired before `SampleStore::mu_`: budget enforcement and footprint
  /// accounting call into cached stores while holding the cache lock. The
  /// reverse order never happens — stores know nothing about the cache.
  mutable Mutex mu_;
  std::map<SketchKey, Slot> slots_ SUBSIM_GUARDED_BY(mu_);
  /// Sum of `Slot::bytes` over `slots_` — kept in lockstep on insert,
  /// erase, and dirty-refresh so budget checks are O(1).
  std::uint64_t total_bytes_ SUBSIM_GUARDED_BY(mu_) = 0;
  std::uint64_t tick_ SUBSIM_GUARDED_BY(mu_) = 0;
  std::uint64_t hits_ SUBSIM_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ SUBSIM_GUARDED_BY(mu_) = 0;
  std::uint64_t lost_races_ SUBSIM_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ SUBSIM_GUARDED_BY(mu_) = 0;
};

}  // namespace subsim

#endif  // SUBSIM_SERVE_RR_SKETCH_CACHE_H_
