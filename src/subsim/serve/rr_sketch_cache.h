#ifndef SUBSIM_SERVE_RR_SKETCH_CACHE_H_
#define SUBSIM_SERVE_RR_SKETCH_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "subsim/graph/graph.h"
#include "subsim/rrset/generator_factory.h"
#include "subsim/rrset/sample_store.h"
#include "subsim/util/mutex.h"
#include "subsim/util/status.h"
#include "subsim/util/thread_annotations.h"

namespace subsim {

/// Identity of a reusable RR sketch. Two queries may share a `SampleStore`
/// only when all four coordinates agree:
///  - `graph`: the registry name whose snapshot the sets were sampled on;
///  - `algo`:  the algorithm name, because each algorithm derives its rng
///             stream lineage differently (OPIM-C uses stream seeds 1/2
///             for R1/R2, IMM uses stream 1 alone) and mixing lineages
///             would break the cold-equivalence guarantee;
///  - `generator`: the RR-set generation strategy (vanilla / subsim / lt);
///  - `rng_seed`: the master seed the stream seeds derive from.
///
/// The generation thread count is deliberately *not* part of the key:
/// fills are thread-count invariant, so stores produced at any
/// `num_threads` are interchangeable.
struct SketchKey {
  std::string graph;
  std::string algo;
  GeneratorKind generator = GeneratorKind::kVanillaIc;
  std::uint64_t rng_seed = 1;

  friend bool operator==(const SketchKey& a, const SketchKey& b) {
    return a.graph == b.graph && a.algo == b.algo &&
           a.generator == b.generator && a.rng_seed == b.rng_seed;
  }
  friend bool operator<(const SketchKey& a, const SketchKey& b) {
    return std::tie(a.graph, a.algo, a.generator, a.rng_seed) <
           std::tie(b.graph, b.algo, b.generator, b.rng_seed);
  }

  std::string ToString() const;
};

/// Thread-safe cache of extendable RR-set collections (`SampleStore`s),
/// keyed by `SketchKey`, with byte-budget LRU eviction.
///
/// Entries pair a store with the graph snapshot it was sampled on, so a
/// query always runs against the exact graph its reused sets came from even
/// if the registry has since re-loaded the name. Stores only ever hold
/// plain (never sentinel-truncated) RR sets — algorithms that truncate
/// (HIST) are structurally excluded because `SupportsSampleReuse()` is
/// false for them, so they never reach the cache.
///
/// Eviction removes least-recently-used entries until the sum of store
/// footprints fits `Options::max_bytes`. Eviction only drops the cache's
/// reference: queries still running against an evicted entry keep it alive
/// through their `shared_ptr` and finish normally.
class RrSketchCache {
 public:
  struct Options {
    /// Byte budget across all cached stores. 0 disables caching entirely
    /// (every lookup is a miss and nothing is retained).
    std::uint64_t max_bytes = 512ull << 20;
  };

  /// A cached store plus the graph snapshot it samples.
  struct Entry {
    std::shared_ptr<const Graph> graph;
    std::unique_ptr<SampleStore> store;
  };

  /// Builds the store for a key on a miss. Receives the graph snapshot the
  /// entry will pin.
  using StoreFactory =
      std::function<Result<std::unique_ptr<SampleStore>>(const Graph&)>;

  struct Lookup {
    std::shared_ptr<Entry> entry;
    /// True when the entry pre-existed this lookup (its sets came from
    /// earlier queries).
    bool hit = false;
  };

  RrSketchCache() : RrSketchCache(Options()) {}
  explicit RrSketchCache(const Options& options) : options_(options) {}
  RrSketchCache(const RrSketchCache&) = delete;
  RrSketchCache& operator=(const RrSketchCache&) = delete;

  /// Returns the entry for `key`, creating it via `factory` on a miss.
  /// Concurrent lookups of the same key serialize on the cache lock, so the
  /// factory runs at most once per residency.
  Result<Lookup> GetOrCreate(const SketchKey& key,
                             std::shared_ptr<const Graph> graph,
                             const StoreFactory& factory)
      SUBSIM_EXCLUDES(mu_);

  /// Drops every entry whose key names `graph` — called when a registry
  /// name is re-loaded, since cached sets sampled on the old snapshot must
  /// not serve queries against the new one. Returns the number dropped.
  std::size_t EraseGraph(const std::string& graph) SUBSIM_EXCLUDES(mu_);

  /// Evicts least-recently-used entries until within the byte budget.
  /// Called by the engine after queries (stores grow in place, so an entry
  /// can exceed the budget only after use).
  void EnforceBudget() SUBSIM_EXCLUDES(mu_);

  std::uint64_t hits() const SUBSIM_EXCLUDES(mu_);
  std::uint64_t misses() const SUBSIM_EXCLUDES(mu_);
  std::uint64_t evictions() const SUBSIM_EXCLUDES(mu_);
  std::size_t num_entries() const SUBSIM_EXCLUDES(mu_);
  /// Sum of the cached stores' approximate footprints.
  std::uint64_t ApproxMemoryBytes() const SUBSIM_EXCLUDES(mu_);

 private:
  struct Slot {
    std::shared_ptr<Entry> entry;
    std::uint64_t last_used = 0;
  };

  Options options_;
  /// Acquired before `SampleStore::mu_`: budget enforcement and footprint
  /// accounting call into cached stores while holding the cache lock. The
  /// reverse order never happens — stores know nothing about the cache.
  mutable Mutex mu_;
  std::map<SketchKey, Slot> slots_ SUBSIM_GUARDED_BY(mu_);
  std::uint64_t tick_ SUBSIM_GUARDED_BY(mu_) = 0;
  std::uint64_t hits_ SUBSIM_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ SUBSIM_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ SUBSIM_GUARDED_BY(mu_) = 0;
};

}  // namespace subsim

#endif  // SUBSIM_SERVE_RR_SKETCH_CACHE_H_
