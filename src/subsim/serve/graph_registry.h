#ifndef SUBSIM_SERVE_GRAPH_REGISTRY_H_
#define SUBSIM_SERVE_GRAPH_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "subsim/graph/graph.h"
#include "subsim/util/mutex.h"
#include "subsim/util/status.h"
#include "subsim/util/thread_annotations.h"

namespace subsim {

/// Named, immutable graph snapshots shared across concurrent queries.
///
/// A graph is loaded (or registered) once under a name and handed out as a
/// `shared_ptr<const Graph>`; queries and cache entries keep their snapshot
/// alive for as long as they need it, so re-loading a name never invalidates
/// work in flight — old holders keep the old snapshot, new queries see the
/// new one. All methods are thread-safe.
class GraphRegistry {
 public:
  GraphRegistry() = default;
  GraphRegistry(const GraphRegistry&) = delete;
  GraphRegistry& operator=(const GraphRegistry&) = delete;

  /// Reads a weighted edge-list file and registers it under `name`,
  /// replacing any previous graph with that name. Callers that cache
  /// per-graph state keyed by name must invalidate it on replacement
  /// (`QueryEngine` does).
  Status LoadFromFile(const std::string& name, const std::string& path)
      SUBSIM_EXCLUDES(mu_);

  /// Registers an already-built graph under `name` (replaces).
  Status Register(const std::string& name, Graph graph) SUBSIM_EXCLUDES(mu_);

  /// Snapshot lookup. NotFound when no graph has this name.
  Result<std::shared_ptr<const Graph>> Get(const std::string& name) const
      SUBSIM_EXCLUDES(mu_);

  bool Contains(const std::string& name) const SUBSIM_EXCLUDES(mu_);

  /// Registered names, sorted.
  std::vector<std::string> Names() const SUBSIM_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<const Graph>> graphs_
      SUBSIM_GUARDED_BY(mu_);
};

}  // namespace subsim

#endif  // SUBSIM_SERVE_GRAPH_REGISTRY_H_
