#ifndef SUBSIM_SERVE_GRAPH_REGISTRY_H_
#define SUBSIM_SERVE_GRAPH_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "subsim/graph/graph.h"
#include "subsim/graph/graph_update.h"
#include "subsim/util/mutex.h"
#include "subsim/util/status.h"
#include "subsim/util/thread_annotations.h"

namespace subsim {

/// A pinned registry snapshot: the immutable graph plus the version tag it
/// was published under. Versions are drawn from one registry-global
/// monotonic counter, so a (name, version) pair identifies a topology
/// forever — even across `Erase` + re-`Register` of the same name, a retired
/// version can never be reissued. That property is what lets `SketchKey`
/// carry the version and make stale cache hits structurally impossible.
struct GraphSnapshot {
  std::shared_ptr<const Graph> graph;
  std::uint64_t version = 0;
};

/// Named, immutable, *versioned* graph snapshots shared across concurrent
/// queries.
///
/// A graph is loaded (or registered) under a name and handed out as a
/// `GraphSnapshot`; queries and cache entries keep their snapshot alive for
/// as long as they need it, so replacing or updating a name never
/// invalidates work in flight — old holders keep the old snapshot, new
/// queries see the new one. Every publication (`Register`, `LoadFromFile`,
/// `ApplyUpdates`) bumps the version. All methods are thread-safe.
class GraphRegistry {
 public:
  /// What `ApplyUpdates` hands back: the newly published snapshot, the
  /// snapshot it replaced (kept alive so callers can repair state derived
  /// from it), and the invalidation frontier (see `EdgeUpdateResult`).
  struct UpdateResult {
    GraphSnapshot snapshot;
    GraphSnapshot previous;
    std::vector<NodeId> dirty_nodes;
  };

  GraphRegistry() = default;
  GraphRegistry(const GraphRegistry&) = delete;
  GraphRegistry& operator=(const GraphRegistry&) = delete;

  /// Reads a weighted edge-list file and registers it under `name`,
  /// replacing any previous graph with that name (under a new version).
  Status LoadFromFile(const std::string& name, const std::string& path)
      SUBSIM_EXCLUDES(mu_, update_mu_);

  /// Registers an already-built graph under `name` (replaces; the new
  /// snapshot gets a fresh version).
  Status Register(const std::string& name, Graph graph)
      SUBSIM_EXCLUDES(mu_, update_mu_);

  /// Applies an edge-update batch to the current snapshot of `name` and
  /// publishes the result as a new version. Updates to the registry are
  /// serialized (`update_mu_`), but the expensive graph rebuild runs
  /// outside the lookup lock, so concurrent `Get`/`GetSnapshot` calls never
  /// block on an in-flight update. Fails with `kNotFound` for an unknown
  /// name, `kFailedPrecondition` when `batch.expect_version` is non-zero
  /// and does not match the current version (optimistic concurrency), and
  /// `kInvalidArgument` for a malformed batch — all without publishing.
  Result<UpdateResult> ApplyUpdates(const std::string& name,
                                    const UpdateBatch& batch)
      SUBSIM_EXCLUDES(mu_, update_mu_);

  /// Removes `name`. Snapshots already handed out stay alive through their
  /// holders' shared_ptrs. Returns true when the name was present.
  bool Erase(const std::string& name) SUBSIM_EXCLUDES(mu_);

  /// Snapshot lookup (graph only; legacy shape). NotFound when no graph
  /// has this name.
  Result<std::shared_ptr<const Graph>> Get(const std::string& name) const
      SUBSIM_EXCLUDES(mu_);

  /// Versioned snapshot lookup. NotFound when no graph has this name.
  Result<GraphSnapshot> GetSnapshot(const std::string& name) const
      SUBSIM_EXCLUDES(mu_);

  bool Contains(const std::string& name) const SUBSIM_EXCLUDES(mu_);

  /// Registered names, sorted.
  std::vector<std::string> Names() const SUBSIM_EXCLUDES(mu_);

 private:
  GraphSnapshot Publish(const std::string& name,
                        std::shared_ptr<const Graph> graph)
      SUBSIM_EXCLUDES(mu_);

  /// Serializes `ApplyUpdates` batches so each rebuild starts from the
  /// snapshot the previous one published. Acquired before `mu_`; `mu_` is
  /// only ever taken for short map operations inside it.
  Mutex update_mu_ SUBSIM_ACQUIRED_BEFORE(mu_);
  mutable Mutex mu_;
  std::map<std::string, GraphSnapshot> graphs_ SUBSIM_GUARDED_BY(mu_);
  /// Registry-global version counter; never reused, so retired
  /// (name, version) pairs stay retired forever.
  std::uint64_t next_version_ SUBSIM_GUARDED_BY(mu_) = 0;
};

}  // namespace subsim

#endif  // SUBSIM_SERVE_GRAPH_REGISTRY_H_
