#ifndef SUBSIM_SERVE_QUERY_ENGINE_H_
#define SUBSIM_SERVE_QUERY_ENGINE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <string>

#include "subsim/obs/metrics.h"
#include "subsim/obs/phase_tracer.h"
#include "subsim/serve/graph_registry.h"
#include "subsim/serve/query.h"
#include "subsim/serve/rr_sketch_cache.h"
#include "subsim/util/deadline.h"

namespace subsim {

struct QueryEngineOptions {
  /// Worker threads executing queries; 0 = hardware concurrency.
  unsigned num_workers = 0;
  /// RR-generation threads per query (`ImOptions::num_threads`): 1
  /// (default) fills inline, 0 = hardware concurrency, N = N workers.
  /// Generation is thread-count invariant, so this changes latency only —
  /// results and cache contents are byte-identical for every value.
  unsigned num_threads = 1;
  RrSketchCache::Options cache;
};

/// Executes `SelectSeedsQuery`s on a worker pool, routing reuse-capable
/// algorithms (OPIM-C, IMM) through a shared `RrSketchCache` and falling
/// back to fresh sampling for the rest (HIST's sentinel-truncated sets are
/// never cached, so they can never leak into another query's evaluation).
///
/// Every query runs against the graph snapshot pinned by its cache entry
/// (or fetched from the registry on the fallback path), so registry
/// re-loads never mix snapshots mid-query. Results are deterministic: a
/// query's response is identical whether its sets came fresh or from the
/// cache, and identical to a direct `ImAlgorithm::Run` with the same
/// options (`SelectSeedsQuery::ToImOptions`).
///
/// Thread-safety: `Submit` and `Execute` may be called from any thread.
/// Shutdown ordering: the destructor drains every already-submitted query
/// (each future is fulfilled with its real response) before tearing the
/// workers down; a `Submit` that races the destructor never loses its
/// promise — it resolves immediately with `StatusCode::kUnavailable`.
///
/// Concurrent compatible queries coalesce: while a query with SketchKey K
/// is filling the shared store, an arriving query with the same K and a k
/// no larger subscribes to that fill (waits for the leader, then evaluates
/// on the warmed store) instead of competing round-by-round for the
/// store's writer lock. Responses are identical either way; the wait is
/// bounded by the follower's own deadline.
class QueryEngine {
 public:
  /// Per-call execution context for `Execute` — lets a network front end
  /// account queue time it measured itself and pass the remaining deadline
  /// budget.
  struct ExecContext {
    /// Seconds the request waited upstream (admission queue); recorded in
    /// `serve.queue_us` and echoed in `QueryStats::queue_seconds`.
    double queue_seconds = 0.0;
    /// Remaining execution budget. An already-expired deadline is shed
    /// with `kDeadlineExceeded` before any work; one that expires mid-run
    /// degrades at a round boundary (see `ImOptions::deadline`).
    Deadline deadline;
  };

  explicit QueryEngine(GraphRegistry* registry,
                       const QueryEngineOptions& options = QueryEngineOptions());
  ~QueryEngine();
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Enqueues a query for the worker pool; the future carries the response
  /// (never an exception — failures land in `QueryResponse::status`).
  /// `query.deadline_ms` starts counting here, so time spent queued burns
  /// budget; a budget fully consumed in the queue sheds the query.
  std::future<QueryResponse> Submit(SelectSeedsQuery query);

  /// Runs a query synchronously on the calling thread, sharing the same
  /// cache as pooled queries. `queue_seconds` stays 0 and
  /// `query.deadline_ms` starts counting at the call.
  QueryResponse Execute(const SelectSeedsQuery& query);

  /// As above with caller-supplied queue accounting and deadline; when
  /// `ctx.deadline` is unset, `query.deadline_ms` applies from now.
  QueryResponse Execute(const SelectSeedsQuery& query, const ExecContext& ctx);

  /// What one accepted update batch did, for callers that surface it
  /// (HTTP route, CLI, bench assertions).
  struct GraphUpdateOutcome {
    /// The newly published snapshot version.
    std::uint64_t version = 0;
    /// The version the batch was applied on top of.
    std::uint64_t previous_version = 0;
    /// Edge count of the new snapshot.
    std::uint64_t num_edges = 0;
    /// Cache entries incrementally repaired onto the new version.
    std::size_t entries_repaired = 0;
    /// Old-version entries dropped without repair (repair rejected the new
    /// graph for that entry's generator kind, e.g. LT weight sums).
    std::size_t entries_dropped = 0;
    /// Across all repaired entries: sets regenerated / carried forward.
    std::uint64_t sets_repaired = 0;
    std::uint64_t sets_kept = 0;
    /// Wall seconds spent repairing cache entries (the `serve.update`
    /// span; also observed into `update.repair_us`).
    double repair_seconds = 0.0;
  };

  /// Applies an edge-update batch to `name`: publishes a new registry
  /// version, incrementally repairs every resident cache entry of the
  /// previous version onto it (regenerating only the RR sets whose
  /// traversal touched a mutated edge's target), and retires the old
  /// version's entries. Queries racing the update are safe on both sides:
  /// in-flight ones keep their pinned old snapshot, new ones resolve the
  /// new version and — thanks to the repaired entries — stay warm.
  /// Updates serialize with each other; queries are never blocked. Fails
  /// with `kNotFound` (unknown name), `kFailedPrecondition`
  /// (`batch.expect_version` skew), or `kInvalidArgument` (bad batch), in
  /// which case nothing is published and the cache is untouched.
  Result<GraphUpdateOutcome> ApplyGraphUpdates(const std::string& name,
                                               const UpdateBatch& batch);

  /// Removes `name` end to end: erases it from the registry and drops its
  /// cache entries (all versions). In-flight queries finish on their
  /// pinned snapshots. Returns the number of cache entries dropped, or
  /// `kNotFound` when the registry has no such name.
  Result<std::size_t> RemoveGraph(const std::string& name);

  /// Drops cache entries keyed to a graph name — call after re-loading the
  /// name in the registry. Returns the number of entries dropped.
  /// (With versioned keys this is a memory-hygiene aid, not a correctness
  /// requirement: old-version entries can never serve a new snapshot.)
  std::size_t InvalidateGraph(const std::string& name);

  RrSketchCache& cache() { return cache_; }
  const RrSketchCache& cache() const { return cache_; }
  GraphRegistry& registry() { return *registry_; }

  /// The engine-lifetime metrics registry every query executes against
  /// (`serve.*` plus whatever the algorithms and generators record).
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  const PhaseTracer& tracer() const { return tracer_; }

  /// One JSON object combining cache-level stats (`cache_entries`, ...)
  /// with the observability fields (docs/observability.md) — what the
  /// serve REPL's `stats` command prints.
  std::string StatsJson() const;

 private:
  struct Impl;

  QueryResponse ExecuteInternal(const SelectSeedsQuery& query,
                                std::uint64_t query_id, double queue_seconds,
                                const Deadline& deadline);

  // Declared before the cache: cached SampleStores carry ObsContext
  // pointers into the registry, so they must be destroyed first.
  MetricsRegistry metrics_;
  PhaseTracer tracer_{4096, &metrics_};
  GraphRegistry* registry_;
  RrSketchCache cache_;
  /// Serializes `ApplyGraphUpdates` calls: each repair pass must see the
  /// cache state the previous update left (never held while queries run).
  Mutex update_mu_;
  unsigned num_threads_ = 1;
  std::unique_ptr<Impl> impl_;
};

}  // namespace subsim

#endif  // SUBSIM_SERVE_QUERY_ENGINE_H_
