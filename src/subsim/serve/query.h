#ifndef SUBSIM_SERVE_QUERY_H_
#define SUBSIM_SERVE_QUERY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "subsim/algo/im_algorithm.h"
#include "subsim/rrset/generator_factory.h"
#include "subsim/util/status.h"

namespace subsim {

/// A seed-selection request against a registered graph.
///
/// Text form (one query per line): whitespace-separated `key=value` tokens,
/// e.g.
///
///   graph=dblp algo=opim-c k=50 eps=0.1 seed=7 generator=subsim
///
/// `graph` is required; everything else has the defaults below. Accepted
/// keys: graph, algo, k, eps (or epsilon), delta, seed, generator,
/// deadline_ms (or deadline), rr_encoding (or encoding), approx_coverage
/// (or approx).
struct SelectSeedsQuery {
  std::string graph;
  std::string algo = "opim-c";
  std::uint32_t k = 50;
  double epsilon = 0.1;
  double delta = 0.0;  // 0 = 1/n
  std::uint64_t rng_seed = 1;
  GeneratorKind generator = GeneratorKind::kSubsimIc;
  /// Arena storage encoding for this query's RR sets ("raw" | "delta").
  /// Part of the sketch-cache key (raw and delta stores are both exact but
  /// not byte-interchangeable); the selected seeds are identical either
  /// way — delta just spends less cache budget (docs/memory.md).
  RrEncoding rr_encoding = RrEncoding::kRaw;
  /// Sketch-guided greedy ("approx_coverage=1"): HLL-estimated marginals
  /// with error-adaptive exact refinement. NOT part of the sketch-cache
  /// key — it changes how stored sets are *evaluated*, never their bytes.
  bool approx_coverage = false;
  /// Wall-clock budget in milliseconds; 0 = unbounded. The budget covers
  /// queueing *and* execution: time spent queued is subtracted before the
  /// algorithm starts, an exhausted budget before any work is shed
  /// (DeadlineExceeded / HTTP 429), and one that expires mid-run degrades —
  /// the doubling algorithms stop at a round boundary and annotate the
  /// achieved bound (docs/serving.md).
  std::uint64_t deadline_ms = 0;

  /// ImOptions equivalent to this query. Leaves `num_threads` at its
  /// default; the engine overrides it from `QueryEngineOptions` — safe
  /// because generation is thread-count invariant, so the thread count is
  /// an execution knob, not part of the query's identity.
  ImOptions ToImOptions() const;
};

/// Parses the text form above. Unknown keys, malformed values, and a
/// missing `graph` are InvalidArgument.
Result<SelectSeedsQuery> ParseSelectSeedsQuery(std::string_view line);

/// Per-query accounting the engine fills in alongside the result.
struct QueryStats {
  /// Whether this query's (graph, algo, generator, seed) could use the
  /// sketch cache at all (false for HIST and other non-reusable algorithms).
  bool cache_eligible = false;
  /// Whether a cached store pre-existed this query.
  bool cache_hit = false;
  /// RR sets generated while this query ran vs reused from the cache.
  /// Under concurrent same-key queries the split is approximate (sets one
  /// query generates may be counted by the peer that triggered them), but
  /// the sum matches the sets the query evaluated.
  std::uint64_t rr_sets_reused = 0;
  std::uint64_t rr_sets_generated = 0;
  /// Seconds spent queued behind other work, then executing.
  double queue_seconds = 0.0;
  double exec_seconds = 0.0;
  /// True when this query waited for an in-flight compatible query (same
  /// `SketchKey`, k no larger) to finish filling the shared store instead
  /// of competing for the store's writer lock. Pure scheduling detail:
  /// coalesced responses are byte-identical to un-coalesced ones.
  bool coalesced = false;
};

/// Everything a query returns: the outcome status, the IM result when ok,
/// and the accounting.
struct QueryResponse {
  std::uint64_t query_id = 0;
  SelectSeedsQuery query;
  Status status = Status::Ok();
  ImResult result;
  QueryStats stats;
};

/// Renders a response as a single JSON line (no trailing newline), e.g.
///
///   {"id":3,"ok":true,"graph":"dblp","algo":"opim-c","k":50,
///    "seeds":[12,400,7],"estimated_spread":1234.5,"rr_sets":8192,
///    "cache_eligible":true,"cache_hit":true,"rr_sets_reused":8192,
///    "rr_sets_generated":0,"queue_ms":0.12,"exec_ms":45.6}
///
/// Errors render as {"id":N,"ok":false,"error":"..."} plus the echo fields.
std::string FormatQueryResponseJson(const QueryResponse& response);

}  // namespace subsim

#endif  // SUBSIM_SERVE_QUERY_H_
