#include "subsim/serve/query.h"

#include <cstdio>

#include "subsim/util/string_util.h"

namespace subsim {

namespace {

/// JSON string escaping for the small character set that can appear in
/// graph/algo names and status messages.
std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

ImOptions SelectSeedsQuery::ToImOptions() const {
  ImOptions options;
  options.k = k;
  options.epsilon = epsilon;
  options.delta = delta;
  options.rng_seed = rng_seed;
  options.generator = generator;
  options.rr_encoding = rr_encoding;
  options.approx_coverage = approx_coverage;
  return options;
}

namespace {

bool ParseBoolValue(std::string_view value, bool* out) {
  if (value == "1" || value == "true" || value == "yes") {
    *out = true;
    return true;
  }
  if (value == "0" || value == "false" || value == "no") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

Result<SelectSeedsQuery> ParseSelectSeedsQuery(std::string_view line) {
  SelectSeedsQuery query;
  bool saw_graph = false;
  for (const std::string_view token : SplitAndTrim(line, " \t")) {
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("expected key=value, got '" +
                                     std::string(token) + "'");
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (value.empty()) {
      return Status::InvalidArgument("empty value for '" + std::string(key) +
                                     "'");
    }
    if (key == "graph") {
      query.graph = std::string(value);
      saw_graph = true;
    } else if (key == "algo") {
      query.algo = std::string(value);
    } else if (key == "k") {
      std::uint64_t k = 0;
      if (!ParseUint64(value, &k) || k == 0 || k > 0xFFFFFFFFull) {
        return Status::InvalidArgument("k must be a positive integer");
      }
      query.k = static_cast<std::uint32_t>(k);
    } else if (key == "eps" || key == "epsilon") {
      if (!ParseDouble(value, &query.epsilon)) {
        return Status::InvalidArgument("eps must be a number");
      }
    } else if (key == "delta") {
      if (!ParseDouble(value, &query.delta)) {
        return Status::InvalidArgument("delta must be a number");
      }
    } else if (key == "seed") {
      if (!ParseUint64(value, &query.rng_seed)) {
        return Status::InvalidArgument("seed must be a non-negative integer");
      }
    } else if (key == "deadline_ms" || key == "deadline") {
      if (!ParseUint64(value, &query.deadline_ms)) {
        return Status::InvalidArgument(
            "deadline_ms must be a non-negative integer");
      }
    } else if (key == "generator" || key == "gen") {
      Result<GeneratorKind> kind = ParseGeneratorKind(std::string(value));
      if (!kind.ok()) {
        return kind.status();
      }
      query.generator = *kind;
    } else if (key == "rr_encoding" || key == "encoding") {
      Result<RrEncoding> encoding = ParseRrEncoding(std::string(value));
      if (!encoding.ok()) {
        return encoding.status();
      }
      query.rr_encoding = *encoding;
    } else if (key == "approx_coverage" || key == "approx") {
      if (!ParseBoolValue(value, &query.approx_coverage)) {
        return Status::InvalidArgument(
            "approx_coverage must be 0/1/true/false");
      }
    } else {
      return Status::InvalidArgument("unknown query key '" +
                                     std::string(key) + "'");
    }
  }
  if (!saw_graph) {
    return Status::InvalidArgument("query requires graph=NAME");
  }
  return query;
}

std::string FormatQueryResponseJson(const QueryResponse& response) {
  std::string out = "{\"id\":" + std::to_string(response.query_id);
  out += ",\"ok\":";
  out += response.status.ok() ? "true" : "false";
  out += ",\"graph\":\"" + JsonEscape(response.query.graph) + "\"";
  out += ",\"algo\":\"" + JsonEscape(response.query.algo) + "\"";
  out += ",\"k\":" + std::to_string(response.query.k);
  // Echo the storage/evaluation knobs only when they deviate from the
  // defaults, keeping the common response line unchanged.
  if (response.query.rr_encoding != RrEncoding::kRaw) {
    out += ",\"rr_encoding\":\"";
    out += RrEncodingName(response.query.rr_encoding);
    out += "\"";
  }
  if (response.query.approx_coverage) {
    out += ",\"approx_coverage\":true";
  }
  if (!response.status.ok()) {
    out += ",\"error\":\"" + JsonEscape(response.status.ToString()) + "\"}";
    return out;
  }
  out += ",\"seeds\":[";
  for (std::size_t i = 0; i < response.result.seeds.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += std::to_string(response.result.seeds[i]);
  }
  out += "]";
  out += ",\"estimated_spread\":" + JsonDouble(response.result.estimated_spread);
  if (response.result.optimal_upper_bound > 0.0) {
    out += ",\"approx_ratio\":" + JsonDouble(response.result.approx_ratio);
  }
  if (response.result.achieved_epsilon > 0.0) {
    out += ",\"achieved_eps\":" + JsonDouble(response.result.achieved_epsilon);
  }
  if (response.result.deadline_hit) {
    out += ",\"deadline_hit\":true";
  }
  out += ",\"rr_sets\":" + std::to_string(response.result.num_rr_sets);
  const QueryStats& stats = response.stats;
  out += ",\"cache_eligible\":";
  out += stats.cache_eligible ? "true" : "false";
  out += ",\"cache_hit\":";
  out += stats.cache_hit ? "true" : "false";
  out += ",\"rr_sets_reused\":" + std::to_string(stats.rr_sets_reused);
  out += ",\"rr_sets_generated\":" + std::to_string(stats.rr_sets_generated);
  if (stats.coalesced) {
    out += ",\"coalesced\":true";
  }
  out += ",\"queue_ms\":" + JsonDouble(stats.queue_seconds * 1000.0);
  out += ",\"exec_ms\":" + JsonDouble(stats.exec_seconds * 1000.0);
  out += "}";
  return out;
}

}  // namespace subsim
