#include "subsim/serve/rr_sketch_cache.h"

#include <algorithm>
#include <utility>

namespace subsim {

std::string SketchKey::ToString() const {
  return graph + "@v" + std::to_string(graph_version) + "/" + algo + "/" +
         GeneratorKindName(generator) + "/seed=" + std::to_string(rng_seed) +
         "/" + RrEncodingName(encoding);
}

void RrSketchCache::AddSlotLocked(const SketchKey& key,
                                  std::shared_ptr<Entry> entry) {
  Slot slot;
  slot.entry = std::move(entry);
  slot.last_used = ++tick_;
  slot.bytes = slot.entry->store->ApproxMemoryBytes();
  // Start dirty: the caller who inserted the entry is about to grow it.
  slot.dirty = true;
  total_bytes_ += slot.bytes;
  auto [it, inserted] = slots_.insert_or_assign(key, std::move(slot));
  (void)it;
  (void)inserted;
}

Result<RrSketchCache::Lookup> RrSketchCache::GetOrCreate(
    const SketchKey& key, std::shared_ptr<const Graph> graph,
    const StoreFactory& factory) {
  {
    const MutexLock lock(mu_);
    const auto it = slots_.find(key);
    if (it != slots_.end()) {
      it->second.last_used = ++tick_;
      it->second.dirty = true;
      ++hits_;
      return Lookup{it->second.entry, /*hit=*/true};
    }
  }
  // Build outside the lock: store construction touches the graph (e.g. LT
  // validation) and must not block concurrent lookups of other keys. Two
  // racing misses on the same key both build; the second insert below wins
  // and the loser's store is discarded — wasteful but correct, and rare
  // (misses on one key are normally serialized by the engine's dispatch).
  Result<std::unique_ptr<SampleStore>> store = factory(*graph);
  if (!store.ok()) {
    return store.status();
  }
  auto entry = std::make_shared<Entry>();
  entry->graph = std::move(graph);
  entry->store = std::move(*store);

  const MutexLock lock(mu_);
  const auto it = slots_.find(key);
  if (it != slots_.end()) {
    // Lost the race: this caller paid a full build only to discard it.
    // Counted apart from `hits_` so hit-rate gauges reflect real savings.
    it->second.last_used = ++tick_;
    it->second.dirty = true;
    ++lost_races_;
    return Lookup{it->second.entry, /*hit=*/true};
  }
  ++misses_;
  if (options_.max_bytes == 0) {
    // Caching disabled: hand the fresh entry out without retaining it.
    return Lookup{std::move(entry), /*hit=*/false};
  }
  AddSlotLocked(key, entry);
  return Lookup{std::move(entry), /*hit=*/false};
}

void RrSketchCache::Put(const SketchKey& key, std::shared_ptr<Entry> entry) {
  if (options_.max_bytes == 0) {
    return;
  }
  const MutexLock lock(mu_);
  const auto it = slots_.find(key);
  if (it != slots_.end()) {
    total_bytes_ -= std::min(total_bytes_, it->second.bytes);
    slots_.erase(it);
  }
  AddSlotLocked(key, std::move(entry));
}

std::vector<std::pair<SketchKey, std::shared_ptr<RrSketchCache::Entry>>>
RrSketchCache::EntriesForGraph(const std::string& graph,
                               std::uint64_t graph_version) const {
  const MutexLock lock(mu_);
  std::vector<std::pair<SketchKey, std::shared_ptr<Entry>>> entries;
  for (const auto& [key, slot] : slots_) {
    if (key.graph == graph && key.graph_version == graph_version) {
      entries.emplace_back(key, slot.entry);
    }
  }
  return entries;
}

std::size_t RrSketchCache::EraseIfLocked(
    const std::function<bool(const SketchKey&)>& predicate) {
  std::size_t dropped = 0;
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (predicate(it->first)) {
      total_bytes_ -= std::min(total_bytes_, it->second.bytes);
      it = slots_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

std::size_t RrSketchCache::EraseGraph(const std::string& graph) {
  const MutexLock lock(mu_);
  return EraseIfLocked(
      [&](const SketchKey& key) { return key.graph == graph; });
}

std::size_t RrSketchCache::EraseGraphVersionsBelow(
    const std::string& graph, std::uint64_t graph_version) {
  const MutexLock lock(mu_);
  return EraseIfLocked([&](const SketchKey& key) {
    return key.graph == graph && key.graph_version < graph_version;
  });
}

void RrSketchCache::EnforceBudget() {
  const MutexLock lock(mu_);
  // Refresh only the slots whose stores may have grown since their last
  // accounting; clean slots keep their cached footprint.
  for (auto& [key, slot] : slots_) {
    if (!slot.dirty) {
      continue;
    }
    const std::uint64_t bytes = slot.entry->store->ApproxMemoryBytes();
    total_bytes_ += bytes;
    total_bytes_ -= std::min(total_bytes_, slot.bytes);
    slot.bytes = bytes;
    slot.dirty = false;
  }
  if (total_bytes_ <= options_.max_bytes) {
    return;
  }
  // One pass in LRU order — no per-eviction rescan.
  std::vector<std::map<SketchKey, Slot>::iterator> order;
  order.reserve(slots_.size());
  for (auto it = slots_.begin(); it != slots_.end(); ++it) {
    order.push_back(it);
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    return a->second.last_used < b->second.last_used;
  });
  for (const auto& victim : order) {
    if (total_bytes_ <= options_.max_bytes) {
      break;
    }
    total_bytes_ -= std::min(total_bytes_, victim->second.bytes);
    slots_.erase(victim);
    ++evictions_;
  }
}

std::uint64_t RrSketchCache::hits() const {
  const MutexLock lock(mu_);
  return hits_;
}

std::uint64_t RrSketchCache::misses() const {
  const MutexLock lock(mu_);
  return misses_;
}

std::uint64_t RrSketchCache::lost_races() const {
  const MutexLock lock(mu_);
  return lost_races_;
}

std::uint64_t RrSketchCache::evictions() const {
  const MutexLock lock(mu_);
  return evictions_;
}

std::size_t RrSketchCache::num_entries() const {
  const MutexLock lock(mu_);
  return slots_.size();
}

std::uint64_t RrSketchCache::ApproxMemoryBytes() const {
  const MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [key, slot] : slots_) {
    total += slot.entry->store->ApproxMemoryBytes();
  }
  return total;
}

}  // namespace subsim
