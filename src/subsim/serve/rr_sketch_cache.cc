#include "subsim/serve/rr_sketch_cache.h"

#include <algorithm>
#include <utility>

namespace subsim {

std::string SketchKey::ToString() const {
  return graph + "/" + algo + "/" + GeneratorKindName(generator) + "/seed=" +
         std::to_string(rng_seed);
}

Result<RrSketchCache::Lookup> RrSketchCache::GetOrCreate(
    const SketchKey& key, std::shared_ptr<const Graph> graph,
    const StoreFactory& factory) {
  {
    const MutexLock lock(mu_);
    const auto it = slots_.find(key);
    if (it != slots_.end()) {
      it->second.last_used = ++tick_;
      ++hits_;
      return Lookup{it->second.entry, /*hit=*/true};
    }
  }
  // Build outside the lock: store construction touches the graph (e.g. LT
  // validation) and must not block concurrent lookups of other keys. Two
  // racing misses on the same key both build; the second insert below wins
  // and the loser's store is discarded — wasteful but correct, and rare
  // (misses on one key are normally serialized by the engine's dispatch).
  Result<std::unique_ptr<SampleStore>> store = factory(*graph);
  if (!store.ok()) {
    return store.status();
  }
  auto entry = std::make_shared<Entry>();
  entry->graph = std::move(graph);
  entry->store = std::move(*store);

  const MutexLock lock(mu_);
  const auto it = slots_.find(key);
  if (it != slots_.end()) {
    it->second.last_used = ++tick_;
    ++hits_;
    return Lookup{it->second.entry, /*hit=*/true};
  }
  ++misses_;
  if (options_.max_bytes == 0) {
    // Caching disabled: hand the fresh entry out without retaining it.
    return Lookup{std::move(entry), /*hit=*/false};
  }
  Slot slot;
  slot.entry = std::move(entry);
  slot.last_used = ++tick_;
  const auto [inserted, ok] = slots_.emplace(key, std::move(slot));
  return Lookup{inserted->second.entry, /*hit=*/false};
}

std::size_t RrSketchCache::EraseGraph(const std::string& graph) {
  const MutexLock lock(mu_);
  std::size_t dropped = 0;
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->first.graph == graph) {
      it = slots_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

void RrSketchCache::EnforceBudget() {
  const MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [key, slot] : slots_) {
    total += slot.entry->store->ApproxMemoryBytes();
  }
  while (total > options_.max_bytes && !slots_.empty()) {
    auto victim = slots_.begin();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    total -= std::min(total, victim->second.entry->store->ApproxMemoryBytes());
    slots_.erase(victim);
    ++evictions_;
  }
}

std::uint64_t RrSketchCache::hits() const {
  const MutexLock lock(mu_);
  return hits_;
}

std::uint64_t RrSketchCache::misses() const {
  const MutexLock lock(mu_);
  return misses_;
}

std::uint64_t RrSketchCache::evictions() const {
  const MutexLock lock(mu_);
  return evictions_;
}

std::size_t RrSketchCache::num_entries() const {
  const MutexLock lock(mu_);
  return slots_.size();
}

std::uint64_t RrSketchCache::ApproxMemoryBytes() const {
  const MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [key, slot] : slots_) {
    total += slot.entry->store->ApproxMemoryBytes();
  }
  return total;
}

}  // namespace subsim
