#include "subsim/net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string_view>
#include <utility>

#include "subsim/util/logging.h"
#include "subsim/util/threading.h"

namespace subsim {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Best-effort full write; a slow or dead peer gives up via SO_SNDTIMEO.
void WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      return;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
}

void SetSocketTimeouts(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    SUBSIM_LOG(kWarning) << "setsockopt(SO_RCVTIMEO/SO_SNDTIMEO) failed: "
                         << std::strerror(errno);
  }
  // Small JSON responses on a latency-sensitive path: disable Nagle so a
  // response is not parked behind a delayed ACK.
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    SUBSIM_LOG(kWarning) << "setsockopt(TCP_NODELAY) failed: "
                         << std::strerror(errno);
  }
}

HttpResponse CannedResponse(int status_code, std::string body) {
  HttpResponse response;
  response.status_code = status_code;
  response.headers.emplace_back("Content-Type", "text/plain");
  response.body = std::move(body);
  return response;
}

}  // namespace

HttpServer::HttpServer(Handler handler, const Options& options)
    : handler_(std::move(handler)), options_(options) {
  if (options_.metrics != nullptr) {
    shed_counter_ = options_.metrics->Counter("serve.shed");
    accepted_counter_ = options_.metrics->Counter("http.accepted");
    requests_counter_ = options_.metrics->Counter("http.requests");
    parse_error_counter_ = options_.metrics->Counter("http.parse_errors");
  }
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    SUBSIM_LOG(kWarning) << "setsockopt(SO_REUSEADDR) failed: "
                         << std::strerror(errno);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status status =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) {
    const Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const Status status =
        Status::IoError(std::string("getsockname: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(bound.sin_port);

  started_ = true;
  stopping_.store(false, std::memory_order_relaxed);
  const unsigned num_workers = ResolveNumThreads(options_.num_workers);
  workers_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!started_) {
    return;
  }
  stopping_.store(true, std::memory_order_relaxed);
  // shutdown() (not just close) reliably wakes a thread blocked in
  // accept() on the same fd.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  started_ = false;
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) {
        return;
      }
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;
      }
      SUBSIM_LOG(kError) << "accept failed: " << std::strerror(errno);
      return;
    }
    SetSocketTimeouts(fd, options_.io_timeout_seconds);
    bool shed = false;
    {
      const MutexLock lock(mu_);
      if (pending_.size() >= options_.max_pending) {
        shed = true;
      } else {
        PendingConn conn;
        conn.fd = fd;
        conn.enqueued = std::chrono::steady_clock::now();
        pending_.push_back(conn);
      }
    }
    if (shed) {
      // Admission control: a full pending queue means every worker is busy
      // and a backlog is already waiting — tell the client to back off now
      // instead of growing the queue until every request misses its SLO.
      shed_counter_.Increment();
      HttpResponse response =
          CannedResponse(429, "server overloaded, retry later\n");
      response.headers.emplace_back("Retry-After", "1");
      WriteAll(fd, FormatHttpResponse(response, /*close=*/true));
      ::close(fd);
      continue;
    }
    accepted_counter_.Increment();
    cv_.NotifyOne();
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    PendingConn conn;
    {
      const MutexLock lock(mu_);
      while (!stopping_.load(std::memory_order_relaxed) && pending_.empty()) {
        cv_.Wait(mu_);
      }
      if (pending_.empty()) {
        return;  // stopping and drained
      }
      conn = pending_.front();
      pending_.pop_front();
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      // Connections still queued at shutdown get a clean refusal.
      WriteAll(conn.fd,
               FormatHttpResponse(
                   CannedResponse(503, "server shutting down\n"),
                   /*close=*/true));
      ::close(conn.fd);
      continue;
    }
    ServeConnection(conn.fd, SecondsSince(conn.enqueued));
  }
}

void HttpServer::ServeConnection(int fd, double queue_seconds) {
  HttpRequestParser parser(options_.limits);
  double queue_s = queue_seconds;
  char buf[8192];
  bool open = true;
  while (open) {
    while (parser.state() == HttpRequestParser::State::kNeedMore) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        open = false;  // EOF, IO timeout, or error: drop the connection
        break;
      }
      (void)parser.Consume(
          std::string_view(buf, static_cast<std::size_t>(n)));
    }
    if (parser.state() == HttpRequestParser::State::kNeedMore) {
      break;  // peer went away mid-request
    }
    if (parser.state() == HttpRequestParser::State::kError) {
      parse_error_counter_.Increment();
      WriteAll(fd, FormatHttpResponse(
                       CannedResponse(400, parser.error().message() + "\n"),
                       /*close=*/true));
      break;
    }
    requests_counter_.Increment();
    HttpRequestContext context;
    context.queue_seconds = queue_s;
    queue_s = 0.0;  // keep-alive follow-ups never sat in the queue
    const HttpResponse response = handler_(parser.request(), context);
    const bool close_conn = parser.request().WantsClose() ||
                            stopping_.load(std::memory_order_relaxed);
    WriteAll(fd, FormatHttpResponse(response, close_conn));
    if (close_conn) {
      break;
    }
    const std::string carry = parser.TakeRemainder();
    parser.Reset();
    if (!carry.empty()) {
      (void)parser.Consume(carry);  // pipelined start of the next request
    }
  }
  ::close(fd);
}

}  // namespace subsim
