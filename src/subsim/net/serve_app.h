#ifndef SUBSIM_NET_SERVE_APP_H_
#define SUBSIM_NET_SERVE_APP_H_

#include <string>

#include "subsim/net/http.h"
#include "subsim/net/http_server.h"
#include "subsim/serve/query_engine.h"

namespace subsim {

/// HTTP routing + admission policy in front of a `QueryEngine` — the
/// handler an `HttpServer` runs (docs/serving.md for the wire protocol).
///
/// Routes:
///   POST /v1/select_seeds  body = one query line (`graph=g algo=opim-c
///                          k=8 eps=0.3 seed=7 deadline_ms=50`), response
///                          = the query's JSON line.
///   POST /v1/update_graph  body = an update request (header line
///                          `graph=g [expect_version=V]` then
///                          `insert/delete/weight` op lines — see
///                          `ParseGraphUpdateRequest`); publishes a new
///                          snapshot version and incrementally repairs the
///                          warm cache. 409 on version skew.
///   POST /v1/remove_graph  body = `graph=g`; removes the graph and its
///                          cache entries end to end.
///   GET  /healthz          liveness + registered graph count.
///   GET  /metricsz         engine stats JSON; refreshes the SLO gauges
///                          (`slo.queue_us_p50/p99`, `slo.exec_us_p50/p99`)
///                          from the `serve.queue_us`/`serve.exec_us`
///                          histograms at scrape time.
///
/// Admission: a query whose `deadline_ms` budget was fully consumed while
/// the connection waited for a worker is shed with 429 + `Retry-After`
/// before touching the engine (counted in `serve.shed`, same counter the
/// server's accept-queue overflow uses); otherwise the remaining budget is
/// passed down so the algorithms can degrade at a round boundary.
class ServeApp {
 public:
  explicit ServeApp(QueryEngine* engine);

  /// Thread-safe (called concurrently from server workers).
  HttpResponse Handle(const HttpRequest& request,
                      const HttpRequestContext& context);

  /// The `/metricsz` payload (also usable without a server in front).
  std::string MetricsJson();

 private:
  HttpResponse HandleSelectSeeds(const HttpRequest& request,
                                 const HttpRequestContext& context);
  HttpResponse HandleUpdateGraph(const HttpRequest& request);
  HttpResponse HandleRemoveGraph(const HttpRequest& request);

  QueryEngine* engine_;
};

}  // namespace subsim

#endif  // SUBSIM_NET_SERVE_APP_H_
