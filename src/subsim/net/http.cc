#include "subsim/net/http.h"

#include <algorithm>
#include <cctype>

#include "subsim/util/string_util.h"

namespace subsim {

namespace {

constexpr std::size_t kMaxHeaders = 100;

bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool IsMethodChar(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z');
}

bool IsControl(char c) {
  const auto u = static_cast<unsigned char>(c);
  return u < 0x20 || u == 0x7F;
}

std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (AsciiEqualsIgnoreCase(key, name)) {
      return &value;
    }
  }
  return nullptr;
}

bool HttpRequest::WantsClose() const {
  const std::string* connection = FindHeader("Connection");
  if (version == "HTTP/1.0") {
    return connection == nullptr ||
           !AsciiEqualsIgnoreCase(*connection, "keep-alive");
  }
  return connection != nullptr && AsciiEqualsIgnoreCase(*connection, "close");
}

std::string_view HttpReasonPhrase(int status_code) {
  switch (status_code) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    default:
      return "Status";
  }
}

std::string FormatHttpResponse(const HttpResponse& response, bool close) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status_code) + " ";
  out += HttpReasonPhrase(response.status_code);
  out += "\r\n";
  for (const auto& [key, value] : response.headers) {
    out += key;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  if (close) {
    out += "Connection: close\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

HttpRequestParser::State HttpRequestParser::Fail(Status status) {
  state_ = State::kError;
  error_ = std::move(status);
  return state_;
}

HttpRequestParser::State HttpRequestParser::Consume(std::string_view data) {
  if (state_ != State::kNeedMore) {
    return state_;
  }
  buffer_.append(data);
  return Advance();
}

HttpRequestParser::State HttpRequestParser::Advance() {
  if (!head_done_) {
    // The head ends at the first empty line; lines end with LF, with an
    // optional CR before it (strict CRLF wire format, bare LF tolerated).
    std::size_t head_end = std::string::npos;
    for (std::size_t i = 0; i + 1 < buffer_.size(); ++i) {
      if (buffer_[i] != '\n') {
        continue;
      }
      if (buffer_[i + 1] == '\n') {
        head_end = i + 2;
        break;
      }
      if (buffer_[i + 1] == '\r' && i + 2 < buffer_.size() &&
          buffer_[i + 2] == '\n') {
        head_end = i + 3;
        break;
      }
    }
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_head_bytes) {
        return Fail(Status::InvalidArgument("request head exceeds " +
                                            std::to_string(
                                                limits_.max_head_bytes) +
                                            " bytes"));
      }
      return state_;
    }
    if (head_end > limits_.max_head_bytes) {
      return Fail(Status::InvalidArgument(
          "request head exceeds " + std::to_string(limits_.max_head_bytes) +
          " bytes"));
    }
    Status parsed = ParseHead(std::string_view(buffer_).substr(0, head_end));
    if (!parsed.ok()) {
      return Fail(std::move(parsed));
    }
    head_done_ = true;
    buffer_.erase(0, head_end);
  }
  if (buffer_.size() >= body_bytes_needed_) {
    request_.body = buffer_.substr(0, body_bytes_needed_);
    buffer_.erase(0, body_bytes_needed_);
    state_ = State::kComplete;
  }
  return state_;
}

Status HttpRequestParser::ParseHead(std::string_view head) {
  std::vector<std::string_view> lines;
  while (!head.empty()) {
    const std::size_t nl = head.find('\n');
    std::string_view line =
        head.substr(0, nl == std::string_view::npos ? head.size() : nl);
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    lines.push_back(line);
    if (nl == std::string_view::npos) {
      break;
    }
    head.remove_prefix(nl + 1);
  }
  while (!lines.empty() && lines.back().empty()) {
    lines.pop_back();
  }
  if (lines.empty()) {
    return Status::InvalidArgument("empty request head");
  }

  // Request line: METHOD SP TARGET SP VERSION.
  const std::string_view request_line = lines[0];
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    return Status::InvalidArgument("malformed request line");
  }
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target =
      request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (method.empty() ||
      !std::all_of(method.begin(), method.end(), IsMethodChar)) {
    return Status::InvalidArgument("malformed request method");
  }
  if (target.empty() ||
      std::any_of(target.begin(), target.end(), [](char c) {
        return c == ' ' || IsControl(c);
      })) {
    return Status::InvalidArgument("malformed request target");
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Status::InvalidArgument("unsupported HTTP version '" +
                                   std::string(version) + "'");
  }
  request_.method = std::string(method);
  request_.target = std::string(target);
  request_.version = std::string(version);

  // Header fields.
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    if (line.empty()) {
      return Status::InvalidArgument("empty header line inside head");
    }
    if (request_.headers.size() >= kMaxHeaders) {
      return Status::InvalidArgument("too many header fields");
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument("malformed header line");
    }
    const std::string_view name = line.substr(0, colon);
    if (std::any_of(name.begin(), name.end(), [](char c) {
          return c == ' ' || c == '\t' || IsControl(c);
        })) {
      return Status::InvalidArgument("malformed header name");
    }
    const std::string_view value = TrimOws(line.substr(colon + 1));
    if (std::any_of(value.begin(), value.end(), [](char c) {
          return c != '\t' && IsControl(c);
        })) {
      return Status::InvalidArgument("control bytes in header value");
    }
    request_.headers.emplace_back(std::string(name), std::string(value));
  }

  // Body framing: Content-Length only. Chunked (or any Transfer-Encoding)
  // is rejected outright so there is no half-supported framing path.
  if (request_.FindHeader("Transfer-Encoding") != nullptr) {
    return Status::InvalidArgument("Transfer-Encoding is not supported");
  }
  body_bytes_needed_ = 0;
  bool saw_content_length = false;
  for (const auto& [key, value] : request_.headers) {
    if (!AsciiEqualsIgnoreCase(key, "Content-Length")) {
      continue;
    }
    std::uint64_t length = 0;
    if (!ParseUint64(value, &length)) {
      return Status::InvalidArgument("malformed Content-Length");
    }
    if (saw_content_length &&
        length != static_cast<std::uint64_t>(body_bytes_needed_)) {
      return Status::InvalidArgument("conflicting Content-Length headers");
    }
    if (length > limits_.max_body_bytes) {
      return Status::InvalidArgument(
          "body exceeds " + std::to_string(limits_.max_body_bytes) +
          " bytes");
    }
    body_bytes_needed_ = static_cast<std::size_t>(length);
    saw_content_length = true;
  }
  return Status::Ok();
}

std::string HttpRequestParser::TakeRemainder() {
  std::string remainder = std::move(buffer_);
  buffer_.clear();
  return remainder;
}

void HttpRequestParser::Reset() {
  state_ = State::kNeedMore;
  buffer_.clear();
  body_bytes_needed_ = 0;
  head_done_ = false;
  request_ = HttpRequest();
  error_ = Status::Ok();
}

}  // namespace subsim
