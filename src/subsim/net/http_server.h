#ifndef SUBSIM_NET_HTTP_SERVER_H_
#define SUBSIM_NET_HTTP_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "subsim/net/http.h"
#include "subsim/obs/metrics.h"
#include "subsim/util/mutex.h"
#include "subsim/util/status.h"
#include "subsim/util/thread_annotations.h"

namespace subsim {

/// What the server tells the handler about how a request got to it.
struct HttpRequestContext {
  /// Seconds the connection sat in the admission queue between `accept`
  /// and a worker picking it up (0 for follow-up requests on a kept-alive
  /// connection — those were never queued).
  double queue_seconds = 0.0;
};

/// A minimal dependency-free HTTP/1.1 server: one acceptor thread feeding
/// a *bounded* queue of accepted connections, drained by a fixed worker
/// pool that parses with `HttpRequestParser` and calls the handler.
///
/// The bounded queue is the admission layer: when it is full the acceptor
/// sheds the connection immediately with `429 Too Many Requests` +
/// `Retry-After` instead of letting latency collapse — clients get a fast,
/// explicit backpressure signal while in-flight requests keep their SLO.
/// (docs/serving.md discusses sizing.)
///
/// Keep-alive is supported with `Content-Length` framing; per-socket IO
/// timeouts bound how long an idle or trickling peer can pin a worker.
///
/// This file and its .cc are the only places in the library allowed to
/// make raw socket calls (`subsim_lint.py` / `subsim_analyze.py`
/// raw-socket rule); everything above the wire goes through the handler.
class HttpServer {
 public:
  /// Handlers run on worker threads and must be thread-safe.
  using Handler =
      std::function<HttpResponse(const HttpRequest&, const HttpRequestContext&)>;

  struct Options {
    /// Bind address; default loopback-only.
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 binds an ephemeral port (read it back via `port()`).
    std::uint16_t port = 0;
    /// Worker threads; 0 = hardware concurrency.
    unsigned num_workers = 0;
    /// Accepted connections allowed to wait for a worker before the
    /// acceptor starts shedding with 429.
    std::size_t max_pending = 128;
    /// Per-socket receive/send timeout; bounds worker occupancy per peer.
    int io_timeout_seconds = 10;
    /// Wire-format limits handed to every `HttpRequestParser`.
    HttpRequestParser::Limits limits;
    /// Optional instrumentation sink (e.g. the engine registry, so the
    /// admission counters land next to `serve.*`): `serve.shed`,
    /// `http.accepted`, `http.requests`, `http.parse_errors`.
    MetricsRegistry* metrics = nullptr;
  };

  HttpServer(Handler handler, const Options& options);
  /// Stops and joins if still running.
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the acceptor + workers. Fails with
  /// `kIoError` if the address cannot be bound.
  Status Start();

  /// Idempotent: wakes the acceptor, drains queued connections with 503,
  /// and joins all threads.
  void Stop();

  /// The bound port — the ephemeral one when `Options::port` was 0.
  /// Valid after a successful `Start`.
  std::uint16_t port() const { return port_; }

 private:
  struct PendingConn {
    int fd = -1;
    std::chrono::steady_clock::time_point enqueued;
  };

  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd, double queue_seconds);

  Handler handler_;
  Options options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};

  Mutex mu_;
  CondVar cv_;
  std::deque<PendingConn> pending_ SUBSIM_GUARDED_BY(mu_);

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  MetricsRegistry::CounterHandle shed_counter_;
  MetricsRegistry::CounterHandle accepted_counter_;
  MetricsRegistry::CounterHandle requests_counter_;
  MetricsRegistry::CounterHandle parse_error_counter_;
};

}  // namespace subsim

#endif  // SUBSIM_NET_HTTP_SERVER_H_
