#include "subsim/net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <utility>

#include "subsim/util/string_util.h"

namespace subsim {

namespace {

bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Status SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return Status::Ok();
}

}  // namespace

const std::string* HttpClientResponse::FindHeader(
    std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (AsciiEqualsIgnoreCase(key, name)) {
      return &value;
    }
  }
  return nullptr;
}

HttpClient::HttpClient(std::string host, std::uint16_t port,
                       int timeout_seconds)
    : host_(std::move(host)), port_(port), timeout_seconds_(timeout_seconds) {}

HttpClient::~HttpClient() { Disconnect(); }

void HttpClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status HttpClient::Connect() {
  Disconnect();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  timeval tv{};
  tv.tv_sec = timeout_seconds_;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    Disconnect();
    return Status::InvalidArgument("bad host address '" + host_ + "'");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status =
        Status::IoError(std::string("connect: ") + std::strerror(errno));
    Disconnect();
    return status;
  }
  return Status::Ok();
}

Result<HttpClientResponse> HttpClient::Request(std::string_view method,
                                               std::string_view target,
                                               std::string_view body) {
  const bool reused = fd_ >= 0;
  if (!reused) {
    SUBSIM_RETURN_IF_ERROR(Connect());
  }
  Result<HttpClientResponse> response = RequestOnce(method, target, body);
  if (!response.ok() && reused) {
    // The kept-alive connection may have been closed server-side between
    // requests; that is not an error — reconnect and retry once.
    SUBSIM_RETURN_IF_ERROR(Connect());
    response = RequestOnce(method, target, body);
  }
  if (!response.ok()) {
    Disconnect();
  }
  return response;
}

Result<HttpClientResponse> HttpClient::RequestOnce(std::string_view method,
                                                   std::string_view target,
                                                   std::string_view body) {
  std::string request;
  request.reserve(128 + body.size());
  request += method;
  request += " ";
  request += target;
  request += " HTTP/1.1\r\nHost: ";
  request += host_;
  request += "\r\nContent-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  request += body;
  SUBSIM_RETURN_IF_ERROR(SendAll(fd_, request));

  // Read the head (terminated by an empty line), then the body.
  std::string data;
  std::size_t head_end = std::string::npos;
  char buf[8192];
  while (head_end == std::string::npos) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      return Status::IoError("connection closed before response head");
    }
    data.append(buf, static_cast<std::size_t>(n));
    head_end = data.find("\r\n\r\n");
    if (data.size() > 64 * 1024 && head_end == std::string::npos) {
      return Status::InvalidArgument("response head too large");
    }
  }

  HttpClientResponse response;
  std::string_view head = std::string_view(data).substr(0, head_end);
  const std::size_t line_end = head.find("\r\n");
  std::string_view status_line =
      head.substr(0, line_end == std::string_view::npos ? head.size()
                                                        : line_end);
  // "HTTP/1.1 200 OK"
  const std::size_t sp1 = status_line.find(' ');
  if (sp1 == std::string_view::npos || status_line.substr(0, 5) != "HTTP/") {
    return Status::InvalidArgument("malformed response status line");
  }
  std::uint64_t code = 0;
  const std::string_view after = status_line.substr(sp1 + 1);
  const std::size_t sp2 = after.find(' ');
  if (!ParseUint64(after.substr(0, sp2), &code) || code < 100 ||
      code > 599) {
    return Status::InvalidArgument("malformed response status code");
  }
  response.status_code = static_cast<int>(code);

  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view()
                                         : head.substr(line_end + 2);
  while (!rest.empty()) {
    const std::size_t nl = rest.find("\r\n");
    const std::string_view line =
        rest.substr(0, nl == std::string_view::npos ? rest.size() : nl);
    rest = nl == std::string_view::npos ? std::string_view()
                                        : rest.substr(nl + 2);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      continue;  // be liberal in what the test client accepts
    }
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    response.headers.emplace_back(std::string(line.substr(0, colon)),
                                  std::string(value));
  }

  std::uint64_t content_length = 0;
  const std::string* length_header = response.FindHeader("Content-Length");
  if (length_header == nullptr ||
      !ParseUint64(*length_header, &content_length)) {
    return Status::InvalidArgument("response missing Content-Length");
  }
  response.body = data.substr(head_end + 4);
  while (response.body.size() < content_length) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      return Status::IoError("connection closed mid-body");
    }
    response.body.append(buf, static_cast<std::size_t>(n));
  }
  response.body.resize(content_length);

  const std::string* connection = response.FindHeader("Connection");
  if (connection != nullptr && AsciiEqualsIgnoreCase(*connection, "close")) {
    Disconnect();
  }
  return response;
}

}  // namespace subsim
