#ifndef SUBSIM_NET_HTTP_CLIENT_H_
#define SUBSIM_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "subsim/util/status.h"

namespace subsim {

/// A parsed HTTP response as seen by the client.
struct HttpClientResponse {
  int status_code = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive lookup; nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;
};

/// A minimal blocking HTTP/1.1 client over one keep-alive connection.
///
/// Exists so tests and benchmarks can drive `HttpServer` without making
/// raw socket calls themselves — the raw-socket lint rule confines those
/// to src/subsim/net/, and this class is the sanctioned doorway. Not a
/// general-purpose client: IPv4 only, Content-Length framing only, one
/// in-flight request at a time per connection.
class HttpClient {
 public:
  /// `timeout_seconds` bounds connect/send/recv individually.
  HttpClient(std::string host, std::uint16_t port, int timeout_seconds = 10);
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Sends one request and reads the full response, reconnecting if the
  /// server closed the kept-alive connection. `body` may be empty.
  Result<HttpClientResponse> Request(std::string_view method,
                                     std::string_view target,
                                     std::string_view body);

  Result<HttpClientResponse> Get(std::string_view target) {
    return Request("GET", target, "");
  }
  Result<HttpClientResponse> Post(std::string_view target,
                                  std::string_view body) {
    return Request("POST", target, body);
  }

  /// Drops the connection (the next request reconnects).
  void Disconnect();

 private:
  Status Connect();
  Result<HttpClientResponse> RequestOnce(std::string_view method,
                                         std::string_view target,
                                         std::string_view body);

  std::string host_;
  std::uint16_t port_;
  int timeout_seconds_;
  int fd_ = -1;
};

}  // namespace subsim

#endif  // SUBSIM_NET_HTTP_CLIENT_H_
