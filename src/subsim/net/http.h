#ifndef SUBSIM_NET_HTTP_H_
#define SUBSIM_NET_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "subsim/util/status.h"

namespace subsim {

/// Minimal HTTP/1.1 message types and an incremental request parser.
///
/// Deliberately socket-free: every function here is a pure transformation
/// over byte buffers, so the whole wire-parsing surface is fuzzable
/// (fuzz/http_parse_fuzz.cc) and unit-testable without a network. The
/// server in http_server.cc owns the sockets and feeds bytes through this
/// parser; nothing else in the library may touch the wire format.
///
/// Supported subset (docs/serving.md): request line + headers terminated
/// by CRLF (bare LF tolerated), bodies framed by `Content-Length` only —
/// `Transfer-Encoding` is rejected up front rather than half-implemented.
/// Hard limits on head and body sizes turn hostile inputs into clean
/// errors instead of unbounded buffering.

struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string target;   // "/v1/select_seeds"
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent. Returns the
  /// first occurrence (duplicates of load-bearing headers are rejected at
  /// parse time).
  const std::string* FindHeader(std::string_view name) const;

  /// True when the peer asked to close after this exchange ("Connection:
  /// close", or any HTTP/1.0 request without "Connection: keep-alive").
  bool WantsClose() const;
};

struct HttpResponse {
  int status_code = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

/// Standard reason phrase for the handful of codes the server emits.
std::string_view HttpReasonPhrase(int status_code);

/// Serializes a response with `Content-Length` framing. Always emits
/// `Connection: close` when `close` is set so the peer stops reusing the
/// connection.
std::string FormatHttpResponse(const HttpResponse& response, bool close);

/// Incremental HTTP/1.1 request parser. Feed arbitrary byte chunks with
/// `Consume`; once it returns `kComplete`, `request()` is valid and
/// `TakeRemainder()` yields any pipelined bytes past the request. After
/// an error the parser stays in `kError` (`error()` explains) until
/// `Reset`.
class HttpRequestParser {
 public:
  enum class State { kNeedMore, kComplete, kError };

  struct Limits {
    /// Request line + headers, including terminator.
    std::size_t max_head_bytes = 16 * 1024;
    /// Declared Content-Length ceiling.
    std::size_t max_body_bytes = 1024 * 1024;
  };

  HttpRequestParser() = default;
  explicit HttpRequestParser(const Limits& limits) : limits_(limits) {}

  /// Appends `data` and advances. Idempotent once complete or failed.
  State Consume(std::string_view data);

  State state() const { return state_; }
  const HttpRequest& request() const { return request_; }
  const Status& error() const { return error_; }

  /// Bytes received beyond the completed request (start of the next
  /// pipelined request). Only meaningful in `kComplete`.
  std::string TakeRemainder();

  /// Ready for the next request on the same connection.
  void Reset();

 private:
  State Fail(Status status);
  State Advance();
  Status ParseHead(std::string_view head);

  Limits limits_;
  State state_ = State::kNeedMore;
  std::string buffer_;
  std::size_t body_bytes_needed_ = 0;
  bool head_done_ = false;
  HttpRequest request_;
  Status error_ = Status::Ok();
};

}  // namespace subsim

#endif  // SUBSIM_NET_HTTP_H_
