#include "subsim/net/serve_app.h"

#include <string_view>
#include <utility>

#include "subsim/graph/graph_update.h"
#include "subsim/obs/metrics.h"
#include "subsim/util/deadline.h"
#include "subsim/util/string_util.h"

namespace subsim {

namespace {

std::string JsonEscapeMinimal(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

HttpResponse JsonResponse(int status_code, std::string body) {
  HttpResponse response;
  response.status_code = status_code;
  response.headers.emplace_back("Content-Type", "application/json");
  response.body = std::move(body);
  return response;
}

HttpResponse JsonError(int status_code, std::string_view message) {
  return JsonResponse(status_code, "{\"ok\":false,\"error\":\"" +
                                       JsonEscapeMinimal(message) + "\"}\n");
}

int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kFailedPrecondition:
      return 409;  // version skew: the client should refetch and retry
    case StatusCode::kDeadlineExceeded:
      return 429;
    case StatusCode::kUnavailable:
      return 503;
    default:
      return 500;
  }
}

}  // namespace

ServeApp::ServeApp(QueryEngine* engine) : engine_(engine) {
  // Pre-register the SLO gauges so /metricsz carries the keys before the
  // first query lands.
  engine_->metrics().Gauge("slo.queue_us_p50").Set(0.0);
  engine_->metrics().Gauge("slo.queue_us_p99").Set(0.0);
  engine_->metrics().Gauge("slo.exec_us_p50").Set(0.0);
  engine_->metrics().Gauge("slo.exec_us_p99").Set(0.0);
}

std::string ServeApp::MetricsJson() {
  // Refresh the SLO gauges from the latency histograms at scrape time:
  // scraping is rare, quantile extraction is O(buckets), and the gauges
  // then ride along in the same stats JSON as everything else.
  const MetricsSnapshot snapshot = engine_->metrics().Snapshot();
  const auto refresh = [&](const char* histogram, const char* base) {
    const auto it = snapshot.histograms.find(histogram);
    if (it == snapshot.histograms.end()) {
      return;
    }
    engine_->metrics()
        .Gauge(std::string("slo.") + base + "_p50")
        .Set(it->second.ApproxQuantile(0.5));
    engine_->metrics()
        .Gauge(std::string("slo.") + base + "_p99")
        .Set(it->second.ApproxQuantile(0.99));
  };
  refresh("serve.queue_us", "queue_us");
  refresh("serve.exec_us", "exec_us");
  return engine_->StatsJson();
}

HttpResponse ServeApp::Handle(const HttpRequest& request,
                              const HttpRequestContext& context) {
  if (request.target == "/healthz") {
    if (request.method != "GET") {
      return JsonError(405, "use GET");
    }
    return JsonResponse(
        200, "{\"ok\":true,\"graphs\":" +
                 std::to_string(engine_->registry().Names().size()) + "}\n");
  }
  if (request.target == "/metricsz") {
    if (request.method != "GET") {
      return JsonError(405, "use GET");
    }
    return JsonResponse(200, MetricsJson() + "\n");
  }
  if (request.target == "/v1/select_seeds") {
    if (request.method != "POST") {
      return JsonError(405, "use POST");
    }
    return HandleSelectSeeds(request, context);
  }
  if (request.target == "/v1/update_graph") {
    if (request.method != "POST") {
      return JsonError(405, "use POST");
    }
    return HandleUpdateGraph(request);
  }
  if (request.target == "/v1/remove_graph") {
    if (request.method != "POST") {
      return JsonError(405, "use POST");
    }
    return HandleRemoveGraph(request);
  }
  return JsonError(404, "no such endpoint");
}

HttpResponse ServeApp::HandleUpdateGraph(const HttpRequest& request) {
  Result<GraphUpdateRequest> parsed = ParseGraphUpdateRequest(request.body);
  if (!parsed.ok()) {
    return JsonError(400, parsed.status().ToString());
  }
  Result<QueryEngine::GraphUpdateOutcome> outcome =
      engine_->ApplyGraphUpdates(parsed->graph, parsed->batch);
  if (!outcome.ok()) {
    return JsonError(HttpStatusFor(outcome.status()),
                     outcome.status().ToString());
  }
  std::string body = "{\"ok\":true";
  body += ",\"graph\":\"" + JsonEscapeMinimal(parsed->graph) + "\"";
  body += ",\"version\":" + std::to_string(outcome->version);
  body += ",\"previous_version\":" +
          std::to_string(outcome->previous_version);
  body += ",\"num_edges\":" + std::to_string(outcome->num_edges);
  body += ",\"entries_repaired\":" +
          std::to_string(outcome->entries_repaired);
  body += ",\"entries_dropped\":" + std::to_string(outcome->entries_dropped);
  body += ",\"sets_repaired\":" + std::to_string(outcome->sets_repaired);
  body += ",\"sets_kept\":" + std::to_string(outcome->sets_kept);
  body += ",\"repair_ms\":" +
          std::to_string(outcome->repair_seconds * 1000.0);
  body += "}\n";
  return JsonResponse(200, std::move(body));
}

HttpResponse ServeApp::HandleRemoveGraph(const HttpRequest& request) {
  // Body: `graph=NAME` (single line, same key=value idiom as queries).
  std::string name;
  for (const std::string_view token :
       SplitAndTrim(StripWhitespace(request.body), " \t\r\n")) {
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || token.substr(0, eq) != "graph") {
      return JsonError(400, "expected body 'graph=NAME', got '" +
                                std::string(token) + "'");
    }
    name = std::string(token.substr(eq + 1));
  }
  if (name.empty()) {
    return JsonError(400, "expected body 'graph=NAME'");
  }
  Result<std::size_t> dropped = engine_->RemoveGraph(name);
  if (!dropped.ok()) {
    return JsonError(HttpStatusFor(dropped.status()),
                     dropped.status().ToString());
  }
  return JsonResponse(200, "{\"ok\":true,\"graph\":\"" +
                               JsonEscapeMinimal(name) +
                               "\",\"cache_entries_dropped\":" +
                               std::to_string(*dropped) + "}\n");
}

HttpResponse ServeApp::HandleSelectSeeds(const HttpRequest& request,
                                         const HttpRequestContext& context) {
  Result<SelectSeedsQuery> query = ParseSelectSeedsQuery(request.body);
  if (!query.ok()) {
    return JsonError(400, query.status().ToString());
  }

  QueryEngine::ExecContext exec;
  exec.queue_seconds = context.queue_seconds;
  if (query->deadline_ms > 0) {
    // The budget covers queueing too: subtract the time already spent
    // waiting for a worker. A budget that is already gone is shed here —
    // cheaper for everyone than starting work the client gave up on.
    const double remaining_seconds =
        static_cast<double>(query->deadline_ms) / 1000.0 -
        context.queue_seconds;
    if (remaining_seconds <= 0.0) {
      engine_->metrics().Counter("serve.shed").Increment();
      HttpResponse response =
          JsonError(429, "deadline consumed while queued");
      response.headers.emplace_back("Retry-After", "1");
      return response;
    }
    exec.deadline = Deadline::AfterSeconds(remaining_seconds);
  }

  const QueryResponse query_response = engine_->Execute(*query, exec);
  HttpResponse response = JsonResponse(
      HttpStatusFor(query_response.status),
      FormatQueryResponseJson(query_response) + "\n");
  if (response.status_code == 429 || response.status_code == 503) {
    response.headers.emplace_back("Retry-After", "1");
  }
  return response;
}

}  // namespace subsim
